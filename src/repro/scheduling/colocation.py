"""The memory-aware co-location dispatcher (Section 4.3).

The dispatcher walks the waiting queue in first-come-first-serve order.
For each application it keeps Spark's dynamic allocation as the target
executor count, then places executors on the nodes with the most spare
memory, subject to the paper's two admission rules:

* the executor's memory reservation — the *predicted* footprint of the data
  share it will cache, plus a small safety margin — must fit in the node's
  unreserved RAM; and
* the aggregate CPU load of all co-running executors on the node (known
  from profiling and the resource monitor) must not exceed 100 %.

When a node has spare memory but less than the predicted need, the
calibrated memory function is inverted to find how many data items *do*
fit, so partially free nodes are still used.  Because executors are sized
per data chunk and new chunks are handed out as executors finish, the
number of data items given to co-located executors adapts over time, as in
the paper.
"""

from __future__ import annotations

from repro.cluster.simulator import SchedulingContext
from repro.scheduling.base import Scheduler
from repro.scheduling.estimators import MemoryEstimator
from repro.spark.application import SparkApplication
from repro.spark.driver import DynamicAllocationPolicy

__all__ = ["MemoryAwareCoLocationScheduler"]


class MemoryAwareCoLocationScheduler(Scheduler):
    """Co-location driven by a pluggable memory estimator.

    Parameters
    ----------
    estimator:
        Source of footprint and CPU estimates (the paper's mixture of
        experts, the oracle, Quasar's classifier, ...).
    allocation_policy:
        Spark-like dynamic allocation policy providing the target executor
        count per application.
    safety_margin:
        Multiplier applied to predicted footprints when sizing the
        reservation; the paper suggests slightly over-provisioning to
        tolerate prediction error.
    min_data_gb:
        Smallest data chunk worth spawning an executor for.
    min_free_gb:
        Smallest amount of unreserved node memory worth considering.
    resize_to_fit:
        Whether the dispatcher may invert the memory function to shrink an
        executor's data share so it fits a partially free node.  This is
        the capability the paper's memory functions provide; the Quasar
        baseline estimates a single static requirement and therefore runs
        with ``resize_to_fit=False``.
    """

    def __init__(self, estimator: MemoryEstimator,
                 allocation_policy: DynamicAllocationPolicy | None = None,
                 safety_margin: float = 1.05,
                 min_data_gb: float = 0.25,
                 min_free_gb: float = 1.0,
                 resize_to_fit: bool = True) -> None:
        if safety_margin < 1.0:
            raise ValueError("safety_margin must be at least 1.0")
        self.estimator = estimator
        self.allocation_policy = allocation_policy or DynamicAllocationPolicy()
        self.safety_margin = safety_margin
        self.min_data_gb = min_data_gb
        self.min_free_gb = min_free_gb
        self.resize_to_fit = resize_to_fit
        # Predicted footprints are deterministic per (app, data share) once
        # the estimator is calibrated; memoising them keeps repeated scans
        # over a full cluster from re-running the predictor per node.
        self._predicted_gb: dict[tuple[str, float], float] = {}

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def on_submit(self, ctx: SchedulingContext, app: SparkApplication) -> float:
        cost = self.estimator.prepare(app, ctx.spec_of(app))
        return self.charge_profiling(app, cost)

    def schedule(self, ctx: SchedulingContext) -> None:
        waiting = ctx.waiting_apps()
        # The paper's dispatcher starts waiting applications as soon as
        # possible instead of letting already-running jobs absorb every
        # freed resource: applications that have not received any executor
        # yet get first pick of one executor each, and further growth is
        # granted round-robin — one executor per application per round,
        # looping until nothing more fits this step — so the dispatcher is
        # work-conserving without letting the oldest job starve the rest.
        for app in waiting:
            if not app.executors:
                self._schedule_app(ctx, app, max_new_executors=1)
        progressed = True
        while progressed:
            progressed = False
            for app in waiting:
                if self._schedule_app(ctx, app, max_new_executors=1):
                    progressed = True

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _schedule_app(self, ctx: SchedulingContext, app: SparkApplication,
                      max_new_executors: int | None = None) -> int:
        # The executor target follows the *remaining* data (in-flight plus
        # unassigned), the way Spark's dynamic allocation follows the number
        # of pending tasks; this also prevents the final sliver of an
        # application from being split across dozens of near-empty executors.
        desired = self.allocation_policy.desired_executors(
            max(app.remaining_gb, 1e-3)
        )
        active = len(app.active_executors)
        if active >= desired:
            return 0
        cpu_load = self.estimator.cpu_load(app.name)
        spawned = 0
        for node in ctx.cluster.nodes_by_free_memory():
            if active >= desired or app.unassigned_gb <= 1e-6:
                break
            if max_new_executors is not None and spawned >= max_new_executors:
                break
            free_gb = node.free_reserved_memory_gb
            if free_gb < self.min_free_gb:
                # Nodes are sorted by free memory, so no later node fits.
                break
            if node.reserved_cpu_load + cpu_load > 1.0 + 1e-9:
                continue
            share = app.unassigned_gb / max(desired - active, 1)
            budget, data = self._size_executor(app.name, share, free_gb)
            # Never starve an application's final sliver of data: the
            # minimum-chunk rule only applies while larger chunks remain.
            if data < min(self.min_data_gb, app.unassigned_gb - 1e-9):
                continue
            executor = ctx.spawn_executor(app, node.node_id, budget, data)
            if executor is not None:
                active += 1
                spawned += 1
        return spawned

    def _size_executor(self, app_name: str, share_gb: float,
                       free_gb: float) -> tuple[float, float]:
        """Choose the memory reservation and data share for one executor.

        If the predicted need for the full share fits the free memory, the
        executor is sized exactly for the share; otherwise the memory
        function is inverted to find the largest chunk that fits what is
        available.
        """
        key = (app_name, share_gb)
        predicted = self._predicted_gb.get(key)
        if predicted is None:
            predicted = (self.estimator.footprint_gb(app_name, share_gb)
                         * self.safety_margin)
            self._predicted_gb[key] = predicted
        if predicted <= free_gb:
            return predicted, share_gb
        if not self.resize_to_fit:
            # Without an invertible memory function the dispatcher can only
            # take or leave the full share.
            return predicted, 0.0
        budget = free_gb
        data = self.estimator.data_for_budget_gb(
            app_name, budget / self.safety_margin, max_gb=share_gb
        )
        return budget, min(data, share_gb)
