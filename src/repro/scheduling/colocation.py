"""The memory-aware co-location dispatcher (Section 4.3).

The dispatcher walks the waiting queue in first-come-first-serve order.
For each application it keeps Spark's dynamic allocation as the target
executor count, then places executors on the nodes with the most spare
memory, subject to the paper's two admission rules:

* the executor's memory reservation — the *predicted* footprint of the data
  share it will cache, plus a small safety margin — must fit in the node's
  unreserved RAM; and
* the aggregate CPU load of all co-running executors on the node (known
  from profiling and the resource monitor) must not exceed 100 %.

When a node has spare memory but less than the predicted need, the
calibrated memory function is inverted to find how many data items *do*
fit, so partially free nodes are still used.  Because executors are sized
per data chunk and new chunks are handed out as executors finish, the
number of data items given to co-located executors adapts over time, as in
the paper.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simulator import NodeFeatures, SchedulingContext
from repro.scheduling.base import Scheduler
from repro.scheduling.estimators import MemoryEstimator
from repro.spark.application import SparkApplication
from repro.spark.driver import DynamicAllocationPolicy

__all__ = ["MemoryAwareCoLocationScheduler"]


class MemoryAwareCoLocationScheduler(Scheduler):
    """Co-location driven by a pluggable memory estimator.

    Parameters
    ----------
    estimator:
        Source of footprint and CPU estimates (the paper's mixture of
        experts, the oracle, Quasar's classifier, ...).
    allocation_policy:
        Spark-like dynamic allocation policy providing the target executor
        count per application.
    safety_margin:
        Multiplier applied to predicted footprints when sizing the
        reservation; the paper suggests slightly over-provisioning to
        tolerate prediction error.
    min_data_gb:
        Smallest data chunk worth spawning an executor for.
    min_free_gb:
        Smallest amount of unreserved node memory worth considering.
    resize_to_fit:
        Whether the dispatcher may invert the memory function to shrink an
        executor's data share so it fits a partially free node.  This is
        the capability the paper's memory functions provide; the Quasar
        baseline estimates a single static requirement and therefore runs
        with ``resize_to_fit=False``.
    """

    def __init__(self, estimator: MemoryEstimator,
                 allocation_policy: DynamicAllocationPolicy | None = None,
                 safety_margin: float = 1.05,
                 min_data_gb: float = 0.25,
                 min_free_gb: float = 1.0,
                 resize_to_fit: bool = True) -> None:
        if safety_margin < 1.0:
            raise ValueError("safety_margin must be at least 1.0")
        self.estimator = estimator
        self.allocation_policy = allocation_policy or DynamicAllocationPolicy()
        self.safety_margin = safety_margin
        self.min_data_gb = min_data_gb
        self.min_free_gb = min_free_gb
        self.resize_to_fit = resize_to_fit
        # Predicted footprints are deterministic per (app, data share) once
        # the estimator is calibrated; memoising them keeps repeated scans
        # over a full cluster from re-running the predictor per node.
        self._predicted_gb: dict[tuple[str, float], float] = {}

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def on_submit(self, ctx: SchedulingContext, app: SparkApplication) -> float:
        cost = self.estimator.prepare(app, ctx.spec_of(app))
        return self.charge_profiling(app, cost)

    def schedule(self, ctx: SchedulingContext) -> None:
        features = ctx.node_features()
        if features is not None and not (
                features.up & (features.free_gb >= self.min_free_gb)).any():
            # No live node clears the minimum-free bar, so no placement
            # pass below could spawn anything (each scan would break at
            # its first node); the scalar walk is side-effect-free in
            # that case, so skip the waiting queue entirely.
            return
        waiting = ctx.waiting_apps()
        if features is not None and waiting:
            self._prefetch_footprints(waiting)
        # The paper's dispatcher starts waiting applications as soon as
        # possible instead of letting already-running jobs absorb every
        # freed resource: applications that have not received any executor
        # yet get first pick of one executor each, and further growth is
        # granted round-robin — one executor per application per round,
        # looping until nothing more fits this step — so the dispatcher is
        # work-conserving without letting the oldest job starve the rest.
        for app in waiting:
            if not app.executors:
                self._schedule_app(ctx, app, max_new_executors=1)
        progressed = True
        while progressed:
            progressed = False
            for app in waiting:
                if self._schedule_app(ctx, app, max_new_executors=1):
                    progressed = True

    def on_cluster_change(self, ctx: SchedulingContext, event) -> None:
        super().on_cluster_change(ctx, event)
        # The executor target — and with it every (app, share) memo key —
        # derives from the allocation policy just re-sized above, and a
        # topology change can re-prepare applications behind the
        # estimator's back; dropping the memo guarantees no footprint
        # predicted before the change is ever reused after it.
        self._predicted_gb.clear()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _prefetch_footprints(self, waiting: list[SparkApplication]) -> None:
        """One batched footprint inference per epoch over the waiting queue.

        Fills the ``(app, share)`` memo for every waiting application's
        current target share through a single
        :meth:`MemoryEstimator.footprint_batch` call, so the per-node
        placement scans below hit the memo instead of invoking the
        estimator application by application (and the estimator can
        amortize its feature pipeline across the whole batch).  Memo
        values are exactly what the lazy per-call fills in
        ``_size_executor`` would store — ``footprint_batch`` is
        bit-identical to per-row ``footprint_gb`` by contract — so the
        prefetch only moves work, never changes a placement.
        """
        names: list[str] = []
        shares: list[float] = []
        keys: list[tuple[str, float]] = []
        for app in waiting:
            desired = self.allocation_policy.desired_executors(
                max(app.remaining_gb, 1e-3)
            )
            active = len(app.active_executors)
            if active >= desired or app.unassigned_gb <= 1e-6:
                continue
            share = app.unassigned_gb / max(desired - active, 1)
            key = (app.name, share)
            if key in self._predicted_gb:
                continue
            names.append(app.name)
            shares.append(share)
            keys.append(key)
        if not names:
            return
        predicted = self.estimator.footprint_batch(
            names, np.asarray(shares, dtype=np.float64))
        for key, value in zip(keys, predicted):
            self._predicted_gb[key] = float(value) * self.safety_margin

    def _schedule_app(self, ctx: SchedulingContext, app: SparkApplication,
                      max_new_executors: int | None = None) -> int:
        # The executor target follows the *remaining* data (in-flight plus
        # unassigned), the way Spark's dynamic allocation follows the number
        # of pending tasks; this also prevents the final sliver of an
        # application from being split across dozens of near-empty executors.
        desired = self.allocation_policy.desired_executors(
            max(app.remaining_gb, 1e-3)
        )
        active = len(app.active_executors)
        if active >= desired:
            return 0
        features = ctx.node_features()
        if features is not None and max_new_executors == 1:
            scores = self.score_batch(ctx, app, features)
            if scores is not None:
                return self._place_one_vector(ctx, app, features, scores,
                                              desired, active)
        cpu_load = self.estimator.cpu_load(app.name)
        spawned = 0
        for node in ctx.cluster.nodes_by_free_memory():
            if active >= desired or app.unassigned_gb <= 1e-6:
                break
            if max_new_executors is not None and spawned >= max_new_executors:
                break
            free_gb = node.free_reserved_memory_gb
            if free_gb < self.min_free_gb:
                # Nodes are sorted by free memory, so no later node fits.
                break
            if node.reserved_cpu_load + cpu_load > 1.0 + 1e-9:
                continue
            share = app.unassigned_gb / max(desired - active, 1)
            budget, data = self._size_executor(app.name, share, free_gb)
            # Never starve an application's final sliver of data: the
            # minimum-chunk rule only applies while larger chunks remain.
            if data < min(self.min_data_gb, app.unassigned_gb - 1e-9):
                continue
            executor = ctx.spawn_executor(app, node.node_id, budget, data)
            if executor is not None:
                active += 1
                spawned += 1
        return spawned

    def _place_one_vector(self, ctx: SchedulingContext,
                          app: SparkApplication, features: NodeFeatures,
                          scores: np.ndarray, desired: int,
                          active: int) -> int:
        """Column-scored form of the single-spawn scan above.

        Valid only for ``max_new_executors == 1``: until the one spawn
        happens nothing mutates, so the share and the feature snapshot
        stay constant through the scan — exactly like the scalar loop,
        which breaks right after its first successful spawn.
        """
        if app.unassigned_gb <= 1e-6:
            return 0
        for slot in features.ranked(scores).tolist():
            free_gb = float(features.free_gb[slot])
            share = app.unassigned_gb / max(desired - active, 1)
            budget, data = self._size_executor(app.name, share, free_gb)
            # Never starve an application's final sliver of data: the
            # minimum-chunk rule only applies while larger chunks remain.
            if data < min(self.min_data_gb, app.unassigned_gb - 1e-9):
                continue
            executor = ctx.spawn_executor(app, int(features.node_ids[slot]),
                                          budget, data)
            if executor is not None:
                return 1
        return 0

    def score_batch(self, ctx: SchedulingContext, app: SparkApplication,
                    features: NodeFeatures) -> np.ndarray:
        """Free memory as the score, NaN where the admission rules fail.

        The NaN mask is the scalar scan's skip set: down nodes, nodes
        under ``min_free_gb`` (the scalar loop breaks there — on a
        descending free-memory scan every later node fails too, so the
        mask removes exactly the broken-out suffix), and nodes whose
        aggregate CPU would exceed 100 % with this application added.
        """
        cpu_load = self.estimator.cpu_load(app.name)
        eligible = (features.up
                    & (features.free_gb >= self.min_free_gb)
                    & (features.reserved_cpu + cpu_load <= 1.0 + 1e-9))
        return np.where(eligible, features.free_gb, np.nan)

    def _size_executor(self, app_name: str, share_gb: float,
                       free_gb: float) -> tuple[float, float]:
        """Choose the memory reservation and data share for one executor.

        If the predicted need for the full share fits the free memory, the
        executor is sized exactly for the share; otherwise the memory
        function is inverted to find the largest chunk that fits what is
        available.
        """
        key = (app_name, share_gb)
        predicted = self._predicted_gb.get(key)
        if predicted is None:
            predicted = (self.estimator.footprint_gb(app_name, share_gb)
                         * self.safety_margin)
            self._predicted_gb[key] = predicted
        if predicted <= free_gb:
            return predicted, share_gb
        if not self.resize_to_fit:
            # Without an invertible memory function the dispatcher can only
            # take or leave the full share.
            return predicted, 0.0
        budget = free_gb
        data = self.estimator.data_for_budget_gb(
            app_name, budget / self.safety_margin, max_gb=share_gb
        )
        return budget, min(data, share_gb)
