"""Reproduction of "Improving Spark Application Throughput Via Memory Aware
Task Co-location: A Mixture of Experts Approach" (Middleware 2017).

The package is organised as a set of substrates plus the paper's core
contribution:

* :mod:`repro.ml` — from-scratch machine-learning building blocks.
* :mod:`repro.spark` — a Spark-like application/executor/RDD model.
* :mod:`repro.cluster` — a discrete-event multi-node cluster simulator with
  memory-pressure and CPU-contention modelling.
* :mod:`repro.profiling` — synthetic runtime feature (performance counter)
  collection and profiling runs.
* :mod:`repro.workloads` — the 44-benchmark catalogue used in the paper's
  evaluation, plus PARSEC-like compute workloads and task-mix generation.
* :mod:`repro.core` — the mixture-of-experts memory predictor (memory
  functions, expert selector, calibration, offline training).
* :mod:`repro.scheduling` — co-location schedulers: the paper's approach and
  every comparative baseline (isolated, pairwise, Quasar-like, online
  search, unified single-model, oracle).
* :mod:`repro.metrics` — STP, ANTT, utilization, slowdown and report helpers.
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
