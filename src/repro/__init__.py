"""Reproduction of "Improving Spark Application Throughput Via Memory Aware
Task Co-location: A Mixture of Experts Approach" (Middleware 2017).

The package is organised as a set of substrates plus the paper's core
contribution:

* :mod:`repro.ml` — from-scratch machine-learning building blocks.
* :mod:`repro.spark` — a Spark-like application/executor/RDD model.
* :mod:`repro.cluster` — a discrete-event multi-node cluster simulator with
  memory-pressure and CPU-contention modelling.
* :mod:`repro.profiling` — synthetic runtime feature (performance counter)
  collection and profiling runs.
* :mod:`repro.workloads` — the 44-benchmark catalogue used in the paper's
  evaluation, plus PARSEC-like compute workloads and task-mix generation.
* :mod:`repro.core` — the mixture-of-experts memory predictor (memory
  functions, expert selector, calibration, offline training).
* :mod:`repro.scheduling` — co-location schedulers: the paper's approach and
  every comparative baseline (isolated, pairwise, Quasar-like, online
  search, unified single-model, oracle).
* :mod:`repro.metrics` — STP, ANTT, utilization, slowdown and report helpers.
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation section.
"""

__version__ = "1.0.0"

#: The formal public surface of the top level: the version, plus lazy
#: re-exports of the flagship experiment API (:mod:`repro.api`) and the
#: scheduling environment (:mod:`repro.env`).  Everything else is reached
#: through its subpackage; ``docs/API.md`` records the stability tier of
#: every documented name.
__all__ = [
    "__version__",
    # experiment API (lazy re-exports from repro.api)
    "ExperimentPlan",
    "Session",
    "SchedulerSuite",
    "CellResult",
    "ScenarioResult",
    "register_scheme",
    # scheduling environment (lazy re-export from repro.env)
    "SchedulingEnv",
]

#: Which subpackage actually defines each lazy top-level name.
_LAZY_EXPORTS = {
    "ExperimentPlan": "repro.api",
    "Session": "repro.api",
    "SchedulerSuite": "repro.api",
    "CellResult": "repro.api",
    "ScenarioResult": "repro.api",
    "register_scheme": "repro.api",
    "SchedulingEnv": "repro.env",
}


def __getattr__(name: str):
    # Lazy so `import repro` stays cheap and free of import cycles; the
    # resolved attribute is cached in the module namespace.
    source = _LAZY_EXPORTS.get(name)
    if source is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(source), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
