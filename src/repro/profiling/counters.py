"""Synthetic performance-counter features.

Table 2 of the paper lists the 22 raw features collected during the
feature-extraction profiling run, sorted by their importance: cache-miss
rates dominate (L1_TCM, L1_DCM, L1_STM), followed by virtual-memory usage
(``vcache``), block I/O (``bo``) and context switches (``cs``).

Real counters cannot be read here, so each benchmark's feature vector is
synthesised from two ingredients:

* a **family signature** — applications that share a memory-function
  family stress the cache hierarchy and virtual-memory subsystem in a
  similar way, which is exactly the structure the paper observes
  (programs in the same feature-space cluster use the same memory
  function, Figure 16); and
* a **workload-class signature** — the application domain (shuffle, text,
  SQL, graph, iterative ML, linear algebra) shapes the remaining features
  (FLOPs, IPC, I/O wait, user/kernel time...).

A deterministic per-benchmark perturbation separates benchmarks within a
cluster, and per-run measurement noise is added by the profiler.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec, MemoryBehavior, WorkloadClass

__all__ = ["RAW_FEATURE_NAMES", "FeatureVector", "synthesize_features"]


#: The 22 raw features of Table 2, in the paper's importance order.
RAW_FEATURE_NAMES: tuple[str, ...] = (
    "L1_TCM", "L1_DCM", "vcache", "L1_STM",
    "bo", "L2_TCM", "L3_TCM", "cs",
    "FLOPs", "in", "L2_DCM", "L2_LDM",
    "L1_ICM", "swpd", "L2_STM", "IPC",
    "L1_LDM", "L2_ICM", "ID", "WA",
    "US", "SY",
)

_N_FEATURES = len(RAW_FEATURE_NAMES)


@dataclass(frozen=True)
class FeatureVector:
    """A named 22-dimensional raw feature vector."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != _N_FEATURES:
            raise ValueError(f"expected {_N_FEATURES} features, got {len(self.values)}")

    def as_array(self) -> np.ndarray:
        """The feature values as a NumPy vector (Table 2 order)."""
        return np.asarray(self.values, dtype=float)

    def as_dict(self) -> dict[str, float]:
        """The feature values keyed by their Table 2 abbreviation."""
        return dict(zip(RAW_FEATURE_NAMES, self.values))

    def __getitem__(self, name: str) -> float:
        return self.as_dict()[name]


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
# Family signatures set the cache/virtual-memory features (the dominant
# ones in the paper's Varimax analysis).  Index positions follow
# RAW_FEATURE_NAMES.
_FAMILY_SIGNATURE: dict[MemoryBehavior, dict[str, float]] = {
    # Saturating, streaming-style applications: high L1 traffic, little
    # growth in cached virtual memory.
    MemoryBehavior.EXPONENTIAL: {
        "L1_TCM": 0.78, "L1_DCM": 0.72, "vcache": 0.25, "L1_STM": 0.66,
        "bo": 0.7, "L2_TCM": 0.55, "L3_TCM": 0.45, "cs": 0.35, "swpd": 0.1,
    },
    # Graph/iterative applications: large cached working sets, moderate L1
    # misses, lots of context switching between iterations.
    MemoryBehavior.NAPIERIAN_LOG: {
        "L1_TCM": 0.45, "L1_DCM": 0.4, "vcache": 0.8, "L1_STM": 0.35,
        "bo": 0.3, "L2_TCM": 0.62, "L3_TCM": 0.68, "cs": 0.7, "swpd": 0.35,
    },
    # Linear-algebra / statistics applications: compute heavy, regular
    # access patterns, footprint grows polynomially with cached data.
    MemoryBehavior.POWER_LAW: {
        "L1_TCM": 0.2, "L1_DCM": 0.18, "vcache": 0.55, "L1_STM": 0.15,
        "bo": 0.15, "L2_TCM": 0.3, "L3_TCM": 0.35, "cs": 0.45, "swpd": 0.2,
    },
}

# Workload-class signatures set the remaining (less important) features.
_CLASS_SIGNATURE: dict[WorkloadClass, dict[str, float]] = {
    WorkloadClass.SHUFFLE: {
        "FLOPs": 0.15, "in": 0.6, "L2_DCM": 0.5, "L2_LDM": 0.5, "L1_ICM": 0.3,
        "L2_STM": 0.45, "IPC": 0.35, "L1_LDM": 0.6, "L2_ICM": 0.3,
        "ID": 0.6, "WA": 0.5, "US": 0.35, "SY": 0.3,
    },
    WorkloadClass.TEXT: {
        "FLOPs": 0.1, "in": 0.5, "L2_DCM": 0.4, "L2_LDM": 0.42, "L1_ICM": 0.35,
        "L2_STM": 0.35, "IPC": 0.45, "L1_LDM": 0.5, "L2_ICM": 0.32,
        "ID": 0.65, "WA": 0.45, "US": 0.3, "SY": 0.25,
    },
    WorkloadClass.SQL: {
        "FLOPs": 0.2, "in": 0.55, "L2_DCM": 0.48, "L2_LDM": 0.46, "L1_ICM": 0.4,
        "L2_STM": 0.4, "IPC": 0.4, "L1_LDM": 0.52, "L2_ICM": 0.38,
        "ID": 0.55, "WA": 0.55, "US": 0.35, "SY": 0.35,
    },
    WorkloadClass.GRAPH: {
        "FLOPs": 0.35, "in": 0.35, "L2_DCM": 0.62, "L2_LDM": 0.6, "L1_ICM": 0.25,
        "L2_STM": 0.5, "IPC": 0.25, "L1_LDM": 0.65, "L2_ICM": 0.28,
        "ID": 0.4, "WA": 0.25, "US": 0.55, "SY": 0.3,
    },
    WorkloadClass.ML_ITERATIVE: {
        "FLOPs": 0.6, "in": 0.3, "L2_DCM": 0.55, "L2_LDM": 0.52, "L1_ICM": 0.2,
        "L2_STM": 0.45, "IPC": 0.5, "L1_LDM": 0.55, "L2_ICM": 0.22,
        "ID": 0.35, "WA": 0.2, "US": 0.65, "SY": 0.25,
    },
    WorkloadClass.LINEAR_ALGEBRA: {
        "FLOPs": 0.85, "in": 0.25, "L2_DCM": 0.35, "L2_LDM": 0.32, "L1_ICM": 0.15,
        "L2_STM": 0.3, "IPC": 0.7, "L1_LDM": 0.4, "L2_ICM": 0.18,
        "ID": 0.25, "WA": 0.15, "US": 0.75, "SY": 0.2,
    },
}


def _benchmark_perturbation(name: str) -> np.ndarray:
    """Deterministic per-benchmark offset derived from the benchmark name.

    Two benchmarks in the same family/class still produce distinct feature
    vectors, but the offset is small enough (±5 %) to keep them inside the
    same cluster.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    raw = np.frombuffer(digest[: _N_FEATURES], dtype=np.uint8).astype(float)
    return (raw / 255.0 - 0.5) * 0.10


def synthesize_features(spec: BenchmarkSpec,
                        rng: np.random.Generator | None = None,
                        noise: float = 0.03) -> FeatureVector:
    """Produce the 22 raw features a profiling run would observe.

    Parameters
    ----------
    spec:
        Benchmark being profiled.
    rng:
        Source of per-run measurement noise; ``None`` produces the
        noise-free expectation.
    noise:
        Relative standard deviation of the per-run measurement noise.
    """
    base = np.zeros(_N_FEATURES)
    family = _FAMILY_SIGNATURE[spec.memory_behavior]
    wclass = _CLASS_SIGNATURE[spec.workload_class]
    for i, feature in enumerate(RAW_FEATURE_NAMES):
        if feature in family:
            base[i] = family[feature]
        elif feature in wclass:
            base[i] = wclass[feature]
        else:  # pragma: no cover - every feature is covered by a signature
            base[i] = 0.5
    base = base * (1.0 + _benchmark_perturbation(spec.name))
    if rng is not None and noise > 0:
        base = base * (1.0 + rng.normal(0.0, noise, size=_N_FEATURES))
    base = np.clip(base, 0.0, None)
    return FeatureVector(values=tuple(float(v) for v in base))
