"""Profiling runs: feature extraction, CPU-load measurement and calibration.

The runtime system profiles each incoming application in two phases
(Section 4.1):

1. **Feature extraction** — the application is run on ~100 MB of its input
   on the lightly loaded coordinating node while the 22 raw features and
   the average CPU usage are recorded.
2. **Model calibration** — two further profiling runs on small
   different-sized portions of the input measure the memory footprint so
   that the two coefficients of the selected memory function can be
   instantiated.

Both phases process real input partitions, so their output contributes to
the application's final result; the *time* they take is nonetheless
accounted for (Figures 11 and 12 report it at roughly 5 % and 8 % of total
execution time).  The paper calibrates on 5 % and 10 % of the input items;
for terabyte inputs a footprint measurement does not require caching
hundreds of gigabytes, so this reproduction caps the calibration samples
(see ``DESIGN.md``, substitutions) while preserving the two-point
calibration scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.counters import FeatureVector, synthesize_features
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.inputs import profiling_sample_gb

__all__ = ["CalibrationMeasurement", "ProfileReport", "Profiler"]


@dataclass(frozen=True)
class CalibrationMeasurement:
    """One calibration profiling run: sample size and observed footprint."""

    sample_gb: float
    footprint_gb: float


@dataclass(frozen=True)
class ProfileReport:
    """Everything the scheduler learns from profiling one application."""

    app_name: str
    features: FeatureVector
    cpu_load: float
    calibration: tuple[CalibrationMeasurement, CalibrationMeasurement]
    feature_extraction_min: float
    calibration_min: float

    @property
    def total_profiling_min(self) -> float:
        """Total profiling overhead in minutes."""
        return self.feature_extraction_min + self.calibration_min


class Profiler:
    """Produces :class:`ProfileReport` objects for incoming applications.

    Parameters
    ----------
    calibration_fractions:
        Fractions of the input used by the two calibration runs (the paper
        uses 5 % and 10 %).
    calibration_cap_gb:
        Upper bound on each calibration sample.  Instantiating two function
        coefficients does not require caching hundreds of gigabytes, so the
        sample is capped to keep profiling overhead proportionate for
        terabyte inputs (documented substitution).
    measurement_noise:
        Relative noise applied to footprint and CPU-load measurements.
    seed:
        Seed for the measurement-noise generator.
    """

    def __init__(self, calibration_fractions: tuple[float, float] = (0.05, 0.10),
                 calibration_cap_gb: float = 2.0,
                 feature_sample_gb: float | None = None,
                 measurement_noise: float = 0.01,
                 seed: int | None = 0) -> None:
        low, high = calibration_fractions
        if not 0 < low < high < 1:
            raise ValueError("calibration fractions must satisfy 0 < low < high < 1")
        if calibration_cap_gb <= 0:
            raise ValueError("calibration_cap_gb must be positive")
        self.calibration_fractions = (low, high)
        self.calibration_cap_gb = calibration_cap_gb
        self.feature_sample_gb = (
            profiling_sample_gb() if feature_sample_gb is None else feature_sample_gb
        )
        self.measurement_noise = measurement_noise
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Individual measurements
    # ------------------------------------------------------------------
    def extract_features(self, spec: BenchmarkSpec) -> FeatureVector:
        """Collect the 22 raw features from a ~100 MB profiling run."""
        return synthesize_features(spec, rng=self.rng, noise=self.measurement_noise)

    def measure_cpu_load(self, spec: BenchmarkSpec) -> float:
        """Average CPU usage observed during the feature-extraction run."""
        noisy = spec.cpu_load * (1.0 + self.rng.normal(0.0, self.measurement_noise))
        return float(np.clip(noisy, 0.01, 1.0))

    def calibration_samples_gb(self, input_gb: float) -> tuple[float, float]:
        """Sizes of the two calibration samples for the given input."""
        if input_gb <= 0:
            raise ValueError("input_gb must be positive")
        low, high = self.calibration_fractions
        first = min(input_gb * low, self.calibration_cap_gb)
        second = min(input_gb * high, self.calibration_cap_gb * 3.0)
        if second <= first:
            # Degenerate tiny inputs: keep two distinct, ordered sizes.
            first = input_gb * low
            second = input_gb * high
        return float(first), float(second)

    def measure_footprint(self, spec: BenchmarkSpec, sample_gb: float) -> float:
        """Observed executor footprint when caching ``sample_gb`` of input."""
        return spec.observed_footprint_gb(sample_gb, rng=self.rng,
                                          noise=self.measurement_noise)

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    #: Effective parallelism of the profiling host.  Profiling runs on a
    #: single (coordinating) node whose hardware threads process the sample
    #: partitions in parallel, so the sample is consumed several times
    #: faster than a single executor thread would.
    PROFILING_HOST_PARALLELISM = 8.0

    def feature_extraction_min(self, spec: BenchmarkSpec) -> float:
        """Duration of the feature-extraction run (minutes)."""
        return 0.1 + self.feature_sample_gb / spec.rate_gb_per_min

    def calibration_min(self, spec: BenchmarkSpec, input_gb: float) -> float:
        """Duration of the two calibration runs (minutes)."""
        first, second = self.calibration_samples_gb(input_gb)
        parallel_rate = spec.rate_gb_per_min * self.PROFILING_HOST_PARALLELISM
        return 0.1 + (first + second) / parallel_rate

    # ------------------------------------------------------------------
    # Full profile
    # ------------------------------------------------------------------
    def profile(self, app_name: str, spec: BenchmarkSpec,
                input_gb: float) -> ProfileReport:
        """Run the complete profiling pipeline for one application."""
        features = self.extract_features(spec)
        cpu_load = self.measure_cpu_load(spec)
        first, second = self.calibration_samples_gb(input_gb)
        calibration = (
            CalibrationMeasurement(first, self.measure_footprint(spec, first)),
            CalibrationMeasurement(second, self.measure_footprint(spec, second)),
        )
        return ProfileReport(
            app_name=app_name,
            features=features,
            cpu_load=cpu_load,
            calibration=calibration,
            feature_extraction_min=self.feature_extraction_min(spec),
            calibration_min=self.calibration_min(spec, input_gb),
        )
