"""Synthetic runtime profiling.

The paper characterises an incoming application by running it on a small
(~100 MB) sample of its input while collecting 22 raw features from
system-wide profilers (vmstat, Linux perf and PAPI — Table 2), plus the
average CPU usage; two further profiling runs on 5 % and 10 % of the input
measure the memory footprints used to calibrate the chosen memory
function (Section 4.1).

Hardware performance counters are not available in this offline
reproduction, so :mod:`repro.profiling.counters` synthesises the 22
features from each benchmark's workload class and memory-behaviour family.
The synthetic features preserve the property the paper's expert selector
relies on: applications whose memory behaviour follows the same function
family look similar in feature space (Figure 16), while per-benchmark and
per-run variation keeps the learning problem non-trivial.
"""

from repro.profiling.counters import (
    RAW_FEATURE_NAMES,
    FeatureVector,
    synthesize_features,
)
from repro.profiling.profiler import (
    CalibrationMeasurement,
    ProfileReport,
    Profiler,
)

__all__ = [
    "RAW_FEATURE_NAMES",
    "FeatureVector",
    "synthesize_features",
    "CalibrationMeasurement",
    "ProfileReport",
    "Profiler",
]
