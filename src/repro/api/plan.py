"""Declarative, eagerly validated experiment plans.

An :class:`ExperimentPlan` is the full description of a comparison grid —
scenarios × schemes × mixes × seeds — plus how to execute it (engine,
time step, worker processes).  Everything is validated *up front*, at
construction: scenario entries resolve through the scenario registry
(names, spec-JSON paths or :class:`~repro.scenarios.spec.ScenarioSpec`
objects), scheme names are checked against the scheduler plugin registry
with an error listing what *is* registered, and the execution knobs are
range-checked.  A plan that constructs is a plan that can run; nothing
fails deep inside a worker process hours into a sweep.

Plans are frozen and hashable-by-value; derive variants with
:meth:`ExperimentPlan.with_options`::

    plan = ExperimentPlan(schemes=("pairwise", "ours", "oracle"),
                          scenarios=("L1", "L5"), n_mixes=5)
    wide = plan.with_options(workers=8, engine="event")
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.cluster.engine import STEP_MODES
from repro.cluster.simulator import KERNELS
from repro.scenarios.registry import load_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scheduling.registry import validate_schemes

__all__ = ["DEFAULT_SCENARIOS", "ExperimentPlan", "PlanError"]

#: Scenario labels used by default (all of Table 3).
DEFAULT_SCENARIOS: tuple[str, ...] = ("L1", "L2", "L3", "L4", "L5",
                                      "L6", "L7", "L8", "L9", "L10")


class PlanError(ValueError):
    """An experiment plan failed eager validation."""


def _as_tuple(value: Iterable | str) -> tuple:
    if isinstance(value, (str, ScenarioSpec)):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class ExperimentPlan:
    """One validated scenario × scheme × mix comparison grid.

    Parameters
    ----------
    schemes:
        Scheme names registered in :mod:`repro.scheduling.registry`
        (a single name is accepted and wrapped).
    scenarios:
        Scenario identifiers: registry names (``"L1"``..``"L10"``, demo
        scenarios), paths to spec JSON documents, or
        :class:`~repro.scenarios.spec.ScenarioSpec` objects; resolved to
        specs at construction.
    n_mixes:
        Random mixes per scenario (the paper uses ~100; the default keeps
        the grid laptop-sized and can be raised for higher fidelity).
    seed:
        Seed of the per-scenario generator driving mix generation and
        arrival processes, and of the simulators.
    time_step_min:
        Simulator grid step in minutes.
    engine:
        Simulator step mode, ``"event"`` (default) or ``"fixed"``; both
        produce the same trajectories, the event engine just skips the
        steps at which nothing can change.
    kernel:
        How the engine's per-epoch hot loops run: ``"vector"`` (default)
        reduces over the structured state arrays, ``"object"`` keeps the
        per-object Python loops — the scalar parity oracle.  Both produce
        bit-for-bit identical trajectories.
    workers:
        Worker processes for the grid.  ``1`` (default) runs in-process;
        larger values fan the independent grid cells out over a process
        pool owned by the :class:`repro.api.Session`.  Results are
        identical regardless of the worker count.
    """

    schemes: tuple[str, ...]
    scenarios: tuple[ScenarioSpec, ...] = DEFAULT_SCENARIOS
    n_mixes: int = 3
    seed: int = 11
    time_step_min: float = 0.5
    engine: str = "event"
    kernel: str = "vector"
    workers: int = 1

    def __post_init__(self) -> None:
        schemes = _as_tuple(self.schemes)
        if not schemes:
            raise PlanError("a plan needs at least one scheme")
        if len(set(schemes)) != len(schemes):
            raise PlanError(f"duplicate schemes in plan: {schemes}")
        validate_schemes(schemes)  # UnknownSchemeError lists what exists
        object.__setattr__(self, "schemes", schemes)

        entries = _as_tuple(self.scenarios)
        if not entries:
            raise PlanError("a plan needs at least one scenario")
        try:
            # TypeError covers wrong-typed values in a user's spec JSON,
            # OSError an unreadable spec path.
            specs = tuple(load_scenario(entry) for entry in entries)
        except (KeyError, ValueError, TypeError, OSError) as error:
            raise PlanError(f"cannot load scenario: {error}") from error
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate scenario names in plan: {names} "
                            "(rows are keyed by name)")
        object.__setattr__(self, "scenarios", specs)

        if self.n_mixes < 1:
            raise PlanError("n_mixes must be at least 1")
        if self.workers < 1:
            raise PlanError("workers must be at least 1")
        if self.time_step_min <= 0:
            raise PlanError("time_step_min must be positive")
        if self.engine not in STEP_MODES:
            raise PlanError(f"unknown engine {self.engine!r} "
                            f"(available: {', '.join(STEP_MODES)})")
        if self.kernel not in KERNELS:
            raise PlanError(f"unknown kernel {self.kernel!r} "
                            f"(available: {', '.join(KERNELS)})")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def scenario_names(self) -> tuple[str, ...]:
        """The resolved scenario names, in plan order."""
        return tuple(spec.name for spec in self.scenarios)

    @property
    def n_cells(self) -> int:
        """Total number of independent (scenario, scheme, mix) cells."""
        return len(self.scenarios) * len(self.schemes) * self.n_mixes

    def with_options(self, **overrides) -> "ExperimentPlan":
        """A new plan with some fields replaced, re-validated eagerly."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One line summarising the grid, for logs and CLI output."""
        return (f"{len(self.scenarios)} scenario(s) x "
                f"{len(self.schemes)} scheme(s) x {self.n_mixes} mix(es) "
                f"= {self.n_cells} cells "
                f"[engine={self.engine}, kernel={self.kernel}, "
                f"workers={self.workers}, seed={self.seed}]")
