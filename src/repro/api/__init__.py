"""The public programmatic interface of the reproduction.

Everything an external caller needs to run experiments lives here, in
three composable pieces:

* :class:`ExperimentPlan` — a declarative, eagerly validated description
  of a comparison grid (scenarios × schemes × mixes × seed × engine ×
  workers);
* :class:`Session` — a reusable execution context owning the trained
  predictor artefacts (:class:`SchedulerSuite`), the ``.cache/`` suite
  cache, and the worker pool;
* typed results — :class:`CellResult` (streamed per grid cell, with
  per-job :class:`JobRecord` entries) and :class:`ScenarioResult`
  (aggregates with across-mix dispersion), all JSON round-trippable.

Scheduling policies are plugins: third-party schedulers join through
:func:`register_scheme` (re-exported from
:mod:`repro.scheduling.registry`) without touching any experiment code —
see ``examples/custom_scheduler_plugin.py``.

Quickstart::

    from repro.api import ExperimentPlan, Session

    plan = ExperimentPlan(schemes=("pairwise", "ours", "oracle"),
                          scenarios=("L1", "L5"), n_mixes=3, workers=4)
    with Session() as session:
        for cell in session.stream(plan):      # typed, as cells complete
            print(f"{cell.scenario}/{cell.scheme} mix {cell.mix_index}: "
                  f"STP={cell.stp:.2f} ({len(cell.jobs)} jobs)")
        rows = session.run(plan)               # deterministic aggregates

This package *is* the experiment surface: the pre-API entry points
(the ``run_scenarios`` barrier call and its cache shim module) have
been retired.
"""

from repro.api.cache import (
    default_cache_dir,
    load_or_train_suite,
    suite_path,
    suite_fingerprint,
)
from repro.api.plan import DEFAULT_SCENARIOS, ExperimentPlan, PlanError
from repro.api.results import (
    CellResult,
    JobRecord,
    ScenarioResult,
    cells_from_json,
    cells_to_json,
    fold_cells,
    job_records,
    overall_geomean,
    results_from_json,
    results_to_json,
)
from repro.api.session import HorizonTruncationError, Session
from repro.api.suite import SchedulerSuite
from repro.cluster.faults import FaultEvent, FaultSpec, FaultSummary, load_fault_spec
from repro.scheduling.registry import (
    SchemeInfo,
    UnknownSchemeError,
    is_registered,
    register_scheme,
    scheme_info,
    scheme_names,
    unregister_scheme,
    validate_schemes,
)

def __getattr__(name: str):
    # Lazy re-export: the scheduling environment's episode record lives
    # in repro.env (which itself imports repro.api.results), so a
    # top-level import here would be circular when repro.env loads first.
    if name == "EpisodeResult":
        from repro.env.rollout import EpisodeResult

        return EpisodeResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # plan
    "DEFAULT_SCENARIOS",
    "ExperimentPlan",
    "PlanError",
    # scheduling environment (lazy re-export)
    "EpisodeResult",
    # session + suite
    "Session",
    "SchedulerSuite",
    "HorizonTruncationError",
    # results
    "JobRecord",
    "CellResult",
    "ScenarioResult",
    # dynamic-cluster events (re-exported)
    "FaultSpec",
    "FaultEvent",
    "FaultSummary",
    "load_fault_spec",
    "job_records",
    "fold_cells",
    "overall_geomean",
    "cells_to_json",
    "cells_from_json",
    "results_to_json",
    "results_from_json",
    # scheme registry (re-exported)
    "SchemeInfo",
    "UnknownSchemeError",
    "register_scheme",
    "unregister_scheme",
    "scheme_names",
    "scheme_info",
    "is_registered",
    "validate_schemes",
    # suite cache
    "load_or_train_suite",
    "suite_fingerprint",
    "suite_path",
    "default_cache_dir",
]
