"""The shared trained-artefact provider behind every scheduling scheme.

:class:`SchedulerSuite` owns the two offline trained artefacts of the
paper — the training dataset and the mixture of experts fitted on it —
and hands them to scheme builders registered in
:mod:`repro.scheduling.registry`.  Training the models once and sharing
them across every simulated mix mirrors the paper's one-off offline
training cost (Section 3.3) and keeps the experiment grid fast.

Training is *lazy*: a suite used only for prediction-free schemes
(isolated, pairwise, oracle, online search) never trains at all, and
:func:`repro.api.cache.load_or_train_suite` can satisfy the artefacts
from a disk cache instead.  The suite is picklable, which is how a
:class:`repro.api.Session` ships the trained models into worker
processes.
"""

from __future__ import annotations

from repro.core.moe import MixtureOfExperts
from repro.core.training import TrainingDataset, collect_training_data
from repro.scheduling.registry import (
    build_scheduler,
    required_artefacts,
    scheme_info,
)
from repro.spark.driver import DynamicAllocationPolicy

__all__ = ["SchedulerSuite"]


class SchedulerSuite:
    """Lazily trained scheduler artefacts shared across an experiment grid.

    Scheme construction is delegated to the plugin registry
    (:mod:`repro.scheduling.registry`); the suite's job is purely to
    own — and train on demand — the artefacts those builders consume.
    """

    def __init__(self, dataset: TrainingDataset | None = None,
                 moe: MixtureOfExperts | None = None) -> None:
        self._dataset = dataset
        self._moe = moe

    @property
    def dataset(self) -> TrainingDataset:
        """The offline training dataset, collected on first use."""
        if self._dataset is None:
            self._dataset = collect_training_data()
        return self._dataset

    @property
    def moe(self) -> MixtureOfExperts:
        """The trained mixture of experts, fitted on first use."""
        if self._moe is None:
            self._moe = MixtureOfExperts.from_dataset(self.dataset)
        return self._moe

    def is_trained(self) -> bool:
        """Whether both trained artefacts are materialised."""
        return self._dataset is not None and self._moe is not None

    def materialised(self) -> frozenset[str]:
        """Which artefact kinds are currently materialised."""
        kinds = set()
        if self._dataset is not None:
            kinds.add("dataset")
        if self._moe is not None:
            kinds.add("moe")
        return frozenset(kinds)

    def adopt(self, other: "SchedulerSuite") -> None:
        """Take over another suite's materialised artefacts.

        Only fills the slots this suite has not materialised itself, so a
        caller-customised model is never silently replaced.  Used by the
        session layer to install cache-loaded artefacts.
        """
        if self._dataset is None:
            self._dataset = other._dataset
        if self._moe is None:
            self._moe = other._moe

    @staticmethod
    def needs_training(schemes) -> bool:
        """Whether any of the given schemes requires trained artefacts."""
        return bool(required_artefacts(schemes))

    def ensure_trained(self, schemes=None) -> None:
        """Materialise the trained artefacts the given schemes need.

        With ``schemes=None`` everything is trained.  Called before the
        suite is pickled into worker processes, so workers receive trained
        models rather than each re-training their own.
        """
        if schemes is None:
            self.moe
            return
        needed = required_artefacts(schemes)
        if "dataset" in needed:
            self.dataset
        if "moe" in needed:
            self.moe

    def factory(self, scheme: str,
                allocation_policy: DynamicAllocationPolicy | None = None):
        """Return a zero-argument factory building a fresh scheduler.

        The scheme is resolved through the plugin registry — an unknown
        name raises :class:`repro.scheduling.registry.UnknownSchemeError`
        immediately, before any training or simulation starts.

        ``allocation_policy`` overrides the schedulers' Spark-like dynamic
        allocation; the scenario runner derives it from the actual topology
        so executor targets track the cluster size instead of assuming the
        paper's 40 nodes.
        """
        scheme_info(scheme)  # eager name validation
        kwargs = ({} if allocation_policy is None
                  else {"allocation_policy": allocation_policy})
        return lambda: build_scheduler(scheme, self, **kwargs)
