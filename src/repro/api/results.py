"""Typed experiment results: per-job records, grid cells, aggregates.

Three layers of result granularity, each JSON round-trippable:

* :class:`JobRecord` — one job in one simulated schedule: turnaround,
  queueing wait, profiling delay and slowdown against the isolated
  reference (``C_cl / C_is``, the per-job normalised turnaround).
* :class:`CellResult` — one (scenario, scheme, mix, seed) grid cell:
  the headline schedule metrics plus every job's record.  This is what
  :meth:`repro.api.Session.stream` yields as cells complete.
* :class:`ScenarioResult` — the per-(scenario, scheme) aggregate across
  mixes, with across-mix dispersion (std/min/max) alongside the paper's
  geomean/mean headline numbers.

:func:`fold_cells` turns a stream of cells into the aggregate rows, and
:func:`overall_geomean` reduces those rows across scenarios exactly as
Section 5.2 does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.events import SchemeSwitch
from repro.cluster.faults import FaultSummary
from repro.cluster.simulator import SimulationResult
from repro.metrics.throughput import matched_apps
from repro.ml.metrics import geometric_mean
from repro.spark.driver import DynamicAllocationPolicy
from repro.workloads.mixes import Job

__all__ = [
    "JobRecord",
    "CellResult",
    "ScenarioResult",
    "job_records",
    "fold_cells",
    "overall_geomean",
    "cells_to_json",
    "cells_from_json",
    "results_to_json",
    "results_from_json",
]


@dataclass(frozen=True)
class JobRecord:
    """Per-job outcome of one simulated schedule.

    Times are simulated minutes.  ``wait_min`` is the queueing delay
    between submission and the first executor starting; the profiling
    delay (feature extraction plus calibration) is *included* in the
    turnaround, exactly as user-perceived delay is in the paper's ANTT.
    ``slowdown`` is ``C_cl / C_is`` — the job's turnaround over its
    isolated execution time — so 1.0 means no co-location penalty at all.
    """

    name: str
    benchmark: str
    input_gb: float
    submit_time_min: float
    start_time_min: float
    finish_time_min: float
    turnaround_min: float
    wait_min: float
    profiling_delay_min: float
    slowdown: float

    def to_dict(self) -> dict:
        """JSON-ready dict form."""
        return {
            "name": self.name,
            "benchmark": self.benchmark,
            "input_gb": self.input_gb,
            "submit_time_min": self.submit_time_min,
            "start_time_min": self.start_time_min,
            "finish_time_min": self.finish_time_min,
            "turnaround_min": self.turnaround_min,
            "wait_min": self.wait_min,
            "profiling_delay_min": self.profiling_delay_min,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


def job_records(result: SimulationResult, jobs: Sequence[Job],
                policy: DynamicAllocationPolicy | None = None
                ) -> tuple[JobRecord, ...]:
    """Extract every job's record from a completed simulation."""
    records = []
    for job, app, reference in matched_apps(result, list(jobs), policy):
        turnaround = app.turnaround_min()
        records.append(JobRecord(
            name=app.name,
            benchmark=job.benchmark,
            input_gb=job.input_gb,
            submit_time_min=app.submit_time,
            start_time_min=app.start_time,
            finish_time_min=app.finish_time,
            turnaround_min=turnaround,
            wait_min=app.start_time - app.submit_time,
            profiling_delay_min=(app.feature_extraction_min
                                 + app.calibration_min),
            slowdown=turnaround / reference,
        ))
    return tuple(records)


@dataclass(frozen=True)
class CellResult:
    """Metrics of one (scenario, scheme, mix, seed) grid cell.

    Hashable and comparable, so streams obtained under different worker
    counts can be compared as sets — completion order is the only thing a
    worker count may change.
    """

    scenario: str
    scheme: str
    mix_index: int
    seed: int
    engine: str
    stp: float
    antt: float
    antt_reduction_percent: float
    makespan_min: float
    mean_utilization_percent: float
    jobs: tuple[JobRecord, ...]
    #: Fault/recovery telemetry of the cell's schedule; ``None`` when the
    #: scenario declared no dynamic-cluster behaviour (the seed shape).
    faults: FaultSummary | None = None
    #: Scheme hot-swaps an adaptive policy performed during the schedule;
    #: empty for every fixed scheme (the seed shape).
    switches: tuple[SchemeSwitch, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready dict form (the ``faults`` key appears only when set)."""
        payload = {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "mix_index": self.mix_index,
            "seed": self.seed,
            "engine": self.engine,
            "stp": self.stp,
            "antt": self.antt,
            "antt_reduction_percent": self.antt_reduction_percent,
            "makespan_min": self.makespan_min,
            "mean_utilization_percent": self.mean_utilization_percent,
            "jobs": [record.to_dict() for record in self.jobs],
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        if self.switches:
            payload["switches"] = [s.to_dict() for s in self.switches]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CellResult":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(payload)
        kwargs["jobs"] = tuple(JobRecord.from_dict(record)
                               for record in kwargs["jobs"])
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSummary.from_dict(kwargs["faults"])
        kwargs["switches"] = tuple(SchemeSwitch.from_dict(s)
                                   for s in kwargs.get("switches", ()))
        return cls(**kwargs)


@dataclass
class ScenarioResult:
    """Aggregated metrics of one scheme on one scenario.

    The headline aggregates (STP geomean, mean ANTT reduction) match the
    paper's Section 5.2 reduction; the ``*_std``/``*_min``/``*_max``
    fields expose the across-mix dispersion that a geomean-only summary
    hides.
    """

    scheme: str
    scenario: str
    stp_geomean: float
    stp_min: float
    stp_max: float
    antt_reduction_mean: float
    makespan_mean_min: float
    utilization_mean_percent: float
    stp_std: float = 0.0
    antt_reduction_std: float = 0.0
    antt_reduction_min: float = 0.0
    antt_reduction_max: float = 0.0
    n_mixes: int = 0
    #: Across-mix fault/recovery telemetry (only meaningful when the
    #: scenario declared dynamic-cluster behaviour; ``faulty`` says so).
    faulty: bool = False
    availability_mean_percent: float = 100.0
    node_failures_mean: float = 0.0
    preemptions_mean: float = 0.0
    jobs_disrupted_mean: float = 0.0
    work_lost_gb_mean: float = 0.0
    rerun_time_mean_min: float = 0.0
    #: Scheme hot-swap telemetry (only meaningful for adaptive policies
    #: that actually switched at least once; ``adaptive`` says so).
    adaptive: bool = False
    switches_mean: float = 0.0
    schemes_used: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready dict form."""
        payload = {
            "scheme": self.scheme,
            "scenario": self.scenario,
            "stp_geomean": self.stp_geomean,
            "stp_min": self.stp_min,
            "stp_max": self.stp_max,
            "antt_reduction_mean": self.antt_reduction_mean,
            "makespan_mean_min": self.makespan_mean_min,
            "utilization_mean_percent": self.utilization_mean_percent,
            "stp_std": self.stp_std,
            "antt_reduction_std": self.antt_reduction_std,
            "antt_reduction_min": self.antt_reduction_min,
            "antt_reduction_max": self.antt_reduction_max,
            "n_mixes": self.n_mixes,
        }
        if self.faulty:
            payload.update({
                "faulty": True,
                "availability_mean_percent": self.availability_mean_percent,
                "node_failures_mean": self.node_failures_mean,
                "preemptions_mean": self.preemptions_mean,
                "jobs_disrupted_mean": self.jobs_disrupted_mean,
                "work_lost_gb_mean": self.work_lost_gb_mean,
                "rerun_time_mean_min": self.rerun_time_mean_min,
            })
        if self.adaptive:
            payload.update({
                "adaptive": True,
                "switches_mean": self.switches_mean,
                "schemes_used": list(self.schemes_used),
            })
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioResult":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(payload)
        if "schemes_used" in kwargs:
            kwargs["schemes_used"] = tuple(kwargs["schemes_used"])
        return cls(**kwargs)


def fold_cells(cells: Iterable[CellResult],
               scenario_order: Sequence[str] | None = None,
               scheme_order: Sequence[str] | None = None
               ) -> list[ScenarioResult]:
    """Aggregate streamed cells into per-(scenario, scheme) rows.

    Rows come out scenario-major; ``scenario_order``/``scheme_order`` pin
    the ordering (a plan's orders, typically) so the fold is deterministic
    even when the cells arrived in completion order.  Without explicit
    orders, first appearance in ``cells`` decides.  Within a row, mixes
    are aggregated in mix-index order, which keeps the floating-point
    reductions identical to the sequential runner's.
    """
    cells = list(cells)
    if scenario_order is None:
        scenario_order = list(dict.fromkeys(c.scenario for c in cells))
    if scheme_order is None:
        scheme_order = list(dict.fromkeys(c.scheme for c in cells))
    grouped: dict[tuple[str, str], list[CellResult]] = {}
    for cell in cells:
        grouped.setdefault((cell.scenario, cell.scheme), []).append(cell)

    results: list[ScenarioResult] = []
    for scenario in scenario_order:
        for scheme in scheme_order:
            row = grouped.get((scenario, scheme))
            if not row:
                continue
            row.sort(key=lambda c: c.mix_index)
            stps = [c.stp for c in row]
            antt_reds = [c.antt_reduction_percent for c in row]
            fault_kwargs = {}
            summaries = [c.faults for c in row if c.faults is not None]
            if summaries:
                fault_kwargs = {
                    "faulty": True,
                    "availability_mean_percent": float(np.mean(
                        [s.availability_percent for s in summaries])),
                    "node_failures_mean": float(np.mean(
                        [s.node_failures for s in summaries])),
                    "preemptions_mean": float(np.mean(
                        [s.preemptions for s in summaries])),
                    "jobs_disrupted_mean": float(np.mean(
                        [s.jobs_disrupted for s in summaries])),
                    "work_lost_gb_mean": float(np.mean(
                        [s.work_lost_gb for s in summaries])),
                    "rerun_time_mean_min": float(np.mean(
                        [s.rerun_time_min for s in summaries])),
                }
            switch_kwargs = {}
            if any(c.switches for c in row):
                # Visited schemes in first-switch order: every cell starts
                # on the same primary, so the union keeps a stable order.
                visited: dict[str, None] = {}
                for cell in row:
                    for switch in cell.switches:
                        visited.setdefault(switch.from_scheme)
                        visited.setdefault(switch.to_scheme)
                switch_kwargs = {
                    "adaptive": True,
                    "switches_mean": float(np.mean(
                        [len(c.switches) for c in row])),
                    "schemes_used": tuple(visited),
                }
            results.append(ScenarioResult(
                scheme=scheme,
                scenario=scenario,
                stp_geomean=geometric_mean(stps),
                stp_min=min(stps),
                stp_max=max(stps),
                antt_reduction_mean=float(np.mean(antt_reds)),
                makespan_mean_min=float(np.mean(
                    [c.makespan_min for c in row])),
                utilization_mean_percent=float(np.mean(
                    [c.mean_utilization_percent for c in row])),
                stp_std=float(np.std(stps)),
                antt_reduction_std=float(np.std(antt_reds)),
                antt_reduction_min=min(antt_reds),
                antt_reduction_max=max(antt_reds),
                n_mixes=len(row),
                **fault_kwargs,
                **switch_kwargs,
            ))
    return results


def overall_geomean(results: list[ScenarioResult], scheme: str,
                    metric: str = "stp_geomean") -> float:
    """Geometric mean of a metric across scenarios for one scheme."""
    values = [getattr(r, metric) for r in results if r.scheme == scheme]
    if not values:
        raise KeyError(f"no results recorded for scheme {scheme!r}")
    if metric == "antt_reduction_mean":
        return float(np.mean(values))
    return geometric_mean(values)


# ----------------------------------------------------------------------
# JSON round-trips.  json.dumps renders floats with repr, which Python
# guarantees to round-trip bit-for-bit, so load(dump(x)) == x exactly.
# ----------------------------------------------------------------------

def cells_to_json(cells: Iterable[CellResult],
                  path: str | Path | None = None, *, indent: int = 2) -> str:
    """Serialise cells to JSON, optionally writing the document to a file."""
    text = json.dumps([cell.to_dict() for cell in cells], indent=indent) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def cells_from_json(source: str | Path) -> list[CellResult]:
    """Load cells from a JSON string or file path."""
    return [CellResult.from_dict(payload)
            for payload in json.loads(_read_json_source(source))]


def results_to_json(results: Iterable[ScenarioResult],
                    path: str | Path | None = None, *, indent: int = 2) -> str:
    """Serialise aggregate rows to JSON, optionally writing to a file."""
    text = json.dumps([row.to_dict() for row in results],
                      indent=indent) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def results_from_json(source: str | Path) -> list[ScenarioResult]:
    """Load aggregate rows from a JSON string or file path."""
    return [ScenarioResult.from_dict(payload)
            for payload in json.loads(_read_json_source(source))]


def _read_json_source(source: str | Path) -> str:
    """A JSON document from either a literal string or a file path."""
    if isinstance(source, Path):
        return source.read_text()
    text = source.lstrip()
    if text.startswith("[") or text.startswith("{"):
        return source
    return Path(source).read_text()
