"""Disk cache for the trained scheduler suite.

Offline training (feature synthesis, footprint profiling, memory-function
fitting, mixture-of-experts training) is deterministic for a given
training configuration, so repeat runs can skip it entirely: the suite
is pickled under ``.cache/`` together with a format version and a
fingerprint of everything the training outcome depends on — the training
benchmark specifications, the profiling input-size grid and the profiling
seed.  Any change to those invalidates the fingerprint and forces a fresh
training run; ``use_cache=False`` bypasses the cache in both directions.

:class:`repro.api.Session` consults this cache automatically whenever a
plan's schemes need trained artefacts its suite does not yet have.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.api.suite import SchedulerSuite
from repro.core.training import (
    DEFAULT_TRAINING_SEED,
    default_training_input_sizes_gb,
)
from repro.workloads.suites import TRAINING_BENCHMARKS

__all__ = ["CACHE_VERSION", "default_cache_dir", "suite_fingerprint",
           "suite_path", "load_or_train_suite"]

#: Bump when the pickle payload layout or training pipeline changes shape.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.cache/`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache"))


def suite_fingerprint() -> str:
    """Hash of every input the trained artefacts depend on.

    Covers the full repr of the training benchmark specifications (name,
    memory behaviour, rates, ...), the offline profiling grid and the
    profiling seed — a change to any of them must retrain.
    """
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}".encode())
    for spec in TRAINING_BENCHMARKS:
        digest.update(repr(spec).encode())
    digest.update(default_training_input_sizes_gb().tobytes())
    digest.update(str(DEFAULT_TRAINING_SEED).encode())
    return digest.hexdigest()


def suite_path(cache_dir: str | Path | None = None) -> Path:
    """Where the current training configuration's suite pickle lives."""
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / f"scheduler_suite-{suite_fingerprint()[:16]}.pkl"


def load_or_train_suite(cache_dir: str | Path | None = None,
                        use_cache: bool = True) -> SchedulerSuite:
    """Return a fully trained suite, from cache when possible.

    On a cache miss (or with ``use_cache=False``) the suite is trained in
    process; with caching enabled the result is then pickled for the next
    run.  Corrupt or stale cache files are ignored and overwritten, never
    fatal.
    """
    path = suite_path(cache_dir)
    fingerprint = suite_fingerprint()
    if use_cache and path.is_file():
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            if (payload.get("version") == CACHE_VERSION
                    and payload.get("fingerprint") == fingerprint):
                return SchedulerSuite(dataset=payload["dataset"],
                                      moe=payload["moe"])
        except Exception:
            pass  # unreadable/corrupt cache: fall through and retrain

    suite = SchedulerSuite()
    suite.ensure_trained()
    if use_cache:
        _write_atomic(path, {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "dataset": suite.dataset,
            "moe": suite.moe,
        })
    return suite


def _write_atomic(path: Path, payload: dict) -> None:
    """Write the pickle via a temp file + rename so readers never see a
    half-written cache; failures (read-only dirs, full disk) are ignored —
    the cache is an optimisation, not a requirement."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
    except OSError:
        pass
