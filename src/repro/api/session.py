"""Composable experiment sessions with streaming typed results.

A :class:`Session` owns everything that is expensive to set up and worth
reusing across many experiment runs:

* the **trained predictor artefacts** (a :class:`~repro.api.suite.SchedulerSuite`),
  materialised lazily and only to the degree the executed plans require;
* the **suite disk cache** under ``.cache/`` — when a plan first needs
  trained artefacts, the session loads them from disk instead of
  retraining (``use_cache=False`` opts out);
* the **worker pool** — one :class:`~concurrent.futures.ProcessPoolExecutor`
  kept alive across runs and transparently rebuilt when the worker count
  changes or newly trained artefacts must be shipped to workers.

Execution is streaming-first: :meth:`Session.stream` yields one
:class:`~repro.api.results.CellResult` — headline metrics plus per-job
records — as each (scenario, scheme, mix) grid cell completes, in
completion order.  :meth:`Session.run` folds the stream into the
deterministic per-(scenario, scheme) :class:`~repro.api.results.ScenarioResult`
aggregates, bit-for-bit identical for any worker count and engine.

::

    from repro.api import ExperimentPlan, Session

    plan = ExperimentPlan(schemes=("pairwise", "ours", "oracle"),
                          scenarios=("L1", "L5"), n_mixes=3, workers=4)
    with Session() as session:
        for cell in session.stream(plan):        # as cells complete
            print(cell.scenario, cell.scheme, cell.mix_index, cell.stp)
        rows = session.run(plan)                 # aggregated, in plan order
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Iterator

from repro.api.cache import load_or_train_suite
from repro.api.plan import ExperimentPlan
from repro.api.results import CellResult, ScenarioResult, fold_cells, job_records
from repro.api.suite import SchedulerSuite
from repro.cluster.simulator import ClusterSimulator
from repro.metrics.throughput import StreamingScheduleMetrics
from repro.scheduling.registry import (
    merge_registry,
    registry_snapshot,
    required_artefacts,
)
from repro.spark.driver import DynamicAllocationPolicy

__all__ = ["Session", "HorizonTruncationError"]


class HorizonTruncationError(RuntimeError):
    """A scenario's horizon cut the workload short, so the headline metrics
    (STP/ANTT over *completed* turnarounds) are undefined for the run."""


def _simulate_cell(suite: SchedulerSuite, task: tuple) -> CellResult:
    """Simulate one (scenario, scheme, mix) grid cell.

    The cluster is built fresh from the scenario's topology; the
    dynamic-allocation executor cap *starts* from that topology's size
    (for the paper's 40-node platform this matches the seed's fixed
    default exactly) and is re-derived by the scheduler's
    ``on_cluster_change`` hook whenever the scenario's fault spec takes
    nodes down or adds them.  The headline metrics stream off the
    simulator's event bus (:class:`StreamingScheduleMetrics`) — values
    bit-for-bit identical to the historical post-hoc reduction — and the
    isolated references keep the nominal startup topology as their
    yardstick, so fault-induced slowdowns show up as slowdowns rather
    than silently rescaling the baseline.
    """
    scheme, mix_index, jobs, time_step_min, seed, engine, kernel, spec = task
    cluster = spec.build_cluster()
    policy = DynamicAllocationPolicy(max_executors=len(cluster))
    factory = suite.factory(scheme, allocation_policy=policy)
    simulator = ClusterSimulator(cluster, factory(),
                                 time_step_min=time_step_min, seed=seed,
                                 step_mode=engine, kernel=kernel,
                                 max_time_min=spec.max_time_min,
                                 faults=spec.faults)
    metrics = StreamingScheduleMetrics(jobs, policy).attach(simulator.events)
    result = simulator.run(jobs)
    if not result.all_finished():
        unfinished = sum(1 for app in result.apps.values()
                         if app.finish_time is None)
        raise HorizonTruncationError(
            f"scenario {spec.name!r} ({scheme}): horizon "
            f"max_time_min={spec.max_time_min:g} truncated the workload — "
            f"{len(result.unsubmitted_jobs)} job(s) never arrived, "
            f"{unfinished} app(s) unfinished; raise the spec's max_time_min")
    evaluation = metrics.evaluate(result)
    return CellResult(
        scenario=spec.name,
        scheme=scheme,
        mix_index=mix_index,
        seed=seed,
        engine=engine,
        stp=evaluation.stp,
        antt=evaluation.antt,
        antt_reduction_percent=evaluation.antt_reduction_percent,
        makespan_min=evaluation.makespan_min,
        mean_utilization_percent=evaluation.mean_utilization_percent,
        jobs=job_records(result, jobs, policy),
        faults=result.fault_summary,
        switches=result.scheme_switches,
    )


#: Per-process scheduler suite rebuilt once per worker (see _init_worker).
_WORKER_SUITE: SchedulerSuite | None = None


def _init_worker(pool_blob: bytes) -> None:
    """Process-pool initialiser: rebuild the shared suite in this worker.

    The parent pickles the suite — its training dataset plus the trained
    mixture of experts — once per pool; unpickling here gives every worker
    the exact predictors of the sequential path, including any customised
    models the caller installed on the suite.  The parent's scheme
    registrations ride along too, so runtime-registered plugin schemes
    resolve in workers even under a ``spawn`` start method, where this
    process only has the import-time builtins.
    """
    global _WORKER_SUITE
    _WORKER_SUITE, schemes = pickle.loads(pool_blob)
    merge_registry(schemes)


def _run_cell_in_worker(task: tuple) -> CellResult:
    """Simulate one grid cell against the worker's shared suite."""
    return _simulate_cell(_WORKER_SUITE, task)


class Session:
    """A reusable execution context for experiment plans.

    Parameters
    ----------
    suite:
        Shared scheduler suite; a fresh (untrained) one is created when
        omitted.  Pass a customised suite to pin specific models.
    use_cache:
        Whether trained artefacts may be loaded from — and written to —
        the ``.cache/`` suite cache when a plan first needs them.  The
        cache is only consulted for a fully untrained suite, so explicit
        artefacts are never silently replaced.
    cache_dir:
        Override of the cache directory (default: ``$REPRO_CACHE_DIR`` or
        ``.cache/``).

    A session is a context manager; :meth:`close` shuts the worker pool
    down.  Using a session after ``close()`` is fine — a new pool is
    created on demand.
    """

    def __init__(self, suite: SchedulerSuite | None = None,
                 use_cache: bool = True,
                 cache_dir: str | Path | None = None) -> None:
        self._suite = suite if suite is not None else SchedulerSuite()
        self._use_cache = use_cache
        self._cache_dir = cache_dir
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_artefacts: frozenset[str] = frozenset()
        #: Streams currently consuming futures, per pool.  A pool with an
        #: active lease is never cancelled out from under its consumer —
        #: a future stuck between the pending dict and a worker's call
        #: queue would otherwise be dropped by cancel_futures and leave
        #: the consumer waiting on it forever.
        self._leases: dict[ProcessPoolExecutor, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def suite(self) -> SchedulerSuite:
        """The session's trained-artefact provider."""
        return self._suite

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        Queued cells are cancelled when no stream is consuming them; a
        pool still feeding an active stream is instead left to drain, so
        the stream completes normally and never hangs.
        """
        if self._pool is not None:
            self._abandon(self._pool)
            self._pool = None
            self._pool_workers = 0
            self._pool_artefacts = frozenset()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def ensure_trained(self, schemes=None) -> SchedulerSuite:
        """Materialise the artefacts the given schemes need; return the suite.

        With ``schemes=None`` everything is trained.  A fully untrained
        suite is satisfied from the disk cache when caching is enabled
        (training and writing the cache on a miss); a partially trained
        suite always trains in-process so its own artefacts stay
        internally consistent.
        """
        needed = (frozenset(("dataset", "moe")) if schemes is None
                  else required_artefacts(schemes))
        if needed <= self._suite.materialised():
            return self._suite
        if self._use_cache and not self._suite.materialised():
            self._suite.adopt(load_or_train_suite(cache_dir=self._cache_dir))
        else:
            self._suite.ensure_trained(schemes)
        return self._suite

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stream(self, plan: ExperimentPlan) -> Iterator[CellResult]:
        """Yield one :class:`CellResult` per grid cell as it completes.

        With ``plan.workers == 1`` cells complete in plan order; with more
        workers they arrive in completion order.  The *set* of yielded
        cells is identical for any worker count.  Closing the iterator
        early cancels cells that have not started.
        """
        if not isinstance(plan, ExperimentPlan):
            raise TypeError("stream() takes an ExperimentPlan; build one "
                            "with repro.api.ExperimentPlan(...)")
        self.ensure_trained(plan.schemes)
        tasks = self._tasks(plan)
        if plan.workers == 1:
            for task in tasks:
                yield _simulate_cell(self._suite, task)
            return
        pool = self._pool_for(plan.workers)
        self._leases[pool] = self._leases.get(pool, 0) + 1
        futures: list = []
        try:
            futures.extend(pool.submit(_run_cell_in_worker, task)
                           for task in tasks)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        except BrokenProcessPool:
            # A worker died (OOM-kill, unpicklable state, ...): retire the
            # pool so the next run gets a fresh one instead of re-failing.
            if pool is self._pool:
                self.close()
            raise
        finally:
            for future in futures:
                future.cancel()
            self._release(pool)

    def run(self, plan: ExperimentPlan) -> list[ScenarioResult]:
        """Execute a plan and fold the stream into aggregate rows.

        Rows come out scenario-major in plan order; within each row the
        mixes are reduced in mix-index order, so the aggregates are
        bit-for-bit reproducible for any worker count.
        """
        return fold_cells(self.stream(plan),
                          scenario_order=plan.scenario_names,
                          scheme_order=plan.schemes)

    def rollout(self, scenario, policy="random", *, seed: int = 11,
                engine: str = "event", kernel: str = "vector",
                reward: str = "stp_delta",
                time_step_min: float = 0.5, max_steps: int | None = None,
                record_rewards: bool = False,
                obs_mode: str = "dataclass",
                record_utilization: bool = True):
        """Run one scheduling-environment episode; returns an
        :class:`~repro.env.EpisodeResult`.

        ``policy`` is a policy name — ``"random"``, ``"greedy"``, any
        registered scheme name (run through a
        :class:`~repro.env.PolicyAdapter` sharing this session's trained
        artefacts and disk cache), or a ``learned:<checkpoint>`` spec
        (served from the session-transcending checkpoint model cache,
        see :meth:`learned_model`) — or a :class:`repro.env.Policy`
        instance.  ``scenario`` resolves like everywhere else: registry
        name, spec JSON path, or a
        :class:`~repro.scenarios.spec.ScenarioSpec`.
        ``record_rewards`` keeps the per-step reward trace on the
        result.  ``obs_mode="features"`` selects the array-backed fast
        observation path (bit-identical decisions/rewards/STP; see
        :class:`~repro.env.SchedulingEnv`), and ``record_utilization``
        forwards to the simulator's utilization telemetry switch.
        """
        from repro.env import Policy, make_policy
        from repro.env import rollout as run_episode
        from repro.scheduling.registry import is_registered

        if isinstance(policy, str):
            if is_registered(policy):
                self.ensure_trained((policy,))
            policy = make_policy(policy, suite=self._suite, seed=seed)
        elif not isinstance(policy, Policy):
            raise TypeError("policy must be a name or a repro.env.Policy, "
                            f"not {type(policy).__name__}")
        return run_episode(scenario, policy, seed=seed, engine=engine,
                           kernel=kernel, reward=reward,
                           time_step_min=time_step_min, max_steps=max_steps,
                           record_rewards=record_rewards, obs_mode=obs_mode,
                           record_utilization=record_utilization)

    def learned_model(self, checkpoint=None):
        """The policy network behind a ``learned`` checkpoint, cached.

        The learned scheme's artefact is a checkpoint file rather than a
        trained dataset/MoE, so it rides the checkpoint model cache
        (keyed by resolved path, mtime and size — an overwritten file is
        reloaded, an unchanged one is free) instead of the suite cache.
        ``checkpoint=None`` resolves like the scheme itself:
        ``$REPRO_LEARNED_CHECKPOINT``, then the committed package
        default.
        """
        from repro.env.train.scheme import load_policy_model

        return load_policy_model(checkpoint)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tasks(self, plan: ExperimentPlan) -> list[tuple]:
        """Expand a plan into per-cell task tuples, scenario-major.

        Mixes are realised once per scenario and shared across schemes,
        so every scheme faces the exact same workload draws.
        """
        tasks: list[tuple] = []
        for spec in plan.scenarios:
            mixes = spec.make_mixes(n_mixes=plan.n_mixes, seed=plan.seed)
            for scheme in plan.schemes:
                for mix_index, mix in enumerate(mixes):
                    tasks.append((scheme, mix_index, mix, plan.time_step_min,
                                  plan.seed, plan.engine, plan.kernel, spec))
        return tasks

    def _abandon(self, pool: ProcessPoolExecutor) -> None:
        """Stop using a pool, as aggressively as is safe.

        With no active stream leasing it, queued futures are cancelled
        and the workers reaped; otherwise the pool merely stops accepting
        work and drains — the final :meth:`_release` reaps it.
        """
        pool.shutdown(wait=False,
                      cancel_futures=self._leases.get(pool, 0) == 0)

    def _release(self, pool: ProcessPoolExecutor) -> None:
        """Drop one stream's lease; reap an abandoned pool's last lease."""
        self._leases[pool] -= 1
        if self._leases[pool] == 0:
            del self._leases[pool]
            if pool is not self._pool:
                pool.shutdown(wait=False, cancel_futures=True)

    def _pool_for(self, workers: int) -> ProcessPoolExecutor:
        """The shared worker pool, rebuilt only when it no longer fits.

        A pool is tied to the suite snapshot pickled into its workers at
        creation; when the suite has since materialised new artefacts (or
        a different worker count is requested), the old pool is abandoned
        (see :meth:`_abandon` — active streams on it still complete) and
        a fresh one receives the up-to-date suite.
        """
        artefacts = self._suite.materialised()
        if (self._pool is not None
                and self._pool_workers == workers
                and self._pool_artefacts == artefacts):
            return self._pool
        self.close()
        blob = pickle.dumps((self._suite,
                             registry_snapshot(picklable_only=True)))
        self._pool = ProcessPoolExecutor(max_workers=workers,
                                         initializer=_init_worker,
                                         initargs=(blob,))
        self._pool_workers = workers
        self._pool_artefacts = artefacts
        return self._pool
