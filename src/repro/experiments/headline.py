"""Headline numbers of the paper (Section 6.1).

Aggregates the Figure 6 grid into the quantities the abstract quotes:

* average normalized STP of our approach (paper: 8.69x over isolated);
* average ANTT reduction (paper: 49 %);
* fraction of the Oracle performance achieved (paper: 83.9 % STP,
  93.4 % ANTT);
* improvement over Quasar (paper: 1.28x STP, 1.68x ANTT) and Pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScenarioResult, overall_geomean
from repro.experiments import fig6_overall

__all__ = ["HeadlineNumbers", "run", "summarize", "format_table"]


@dataclass(frozen=True)
class HeadlineNumbers:
    """The abstract-level summary of the evaluation."""

    our_stp: float
    our_antt_reduction_percent: float
    fraction_of_oracle_stp: float
    fraction_of_oracle_antt: float
    stp_vs_quasar: float
    stp_vs_pairwise: float


def summarize(results: list[ScenarioResult]) -> HeadlineNumbers:
    """Aggregate a Figure 6 result grid into the headline numbers."""
    ours_stp = overall_geomean(results, "ours")
    oracle_stp = overall_geomean(results, "oracle")
    quasar_stp = overall_geomean(results, "quasar")
    pairwise_stp = overall_geomean(results, "pairwise")
    ours_antt = overall_geomean(results, "ours", "antt_reduction_mean")
    oracle_antt = overall_geomean(results, "oracle", "antt_reduction_mean")
    return HeadlineNumbers(
        our_stp=ours_stp,
        our_antt_reduction_percent=ours_antt,
        fraction_of_oracle_stp=ours_stp / oracle_stp,
        fraction_of_oracle_antt=ours_antt / oracle_antt,
        stp_vs_quasar=ours_stp / quasar_stp,
        stp_vs_pairwise=ours_stp / pairwise_stp,
    )


def run(scenarios=("L1", "L3", "L5", "L8", "L10"), n_mixes: int = 2,
        seed: int = 11, suite=None) -> HeadlineNumbers:
    """Run a reduced Figure 6 grid and summarise it."""
    results = fig6_overall.run(scenarios=scenarios, n_mixes=n_mixes, seed=seed,
                               suite=suite)
    return summarize(results)


def format_table(numbers: HeadlineNumbers) -> str:
    """Render the headline comparison against the paper's numbers."""
    rows = [
        ("normalized STP of our approach", f"{numbers.our_stp:.2f}", "8.69"),
        ("ANTT reduction of our approach",
         f"{numbers.our_antt_reduction_percent:.1f}%", "49%"),
        ("fraction of Oracle STP",
         f"{numbers.fraction_of_oracle_stp * 100:.1f}%", "83.9%"),
        ("fraction of Oracle ANTT reduction",
         f"{numbers.fraction_of_oracle_antt * 100:.1f}%", "93.4%"),
        ("STP improvement over Quasar", f"{numbers.stp_vs_quasar:.2f}x", "1.28x"),
        ("STP improvement over Pairwise", f"{numbers.stp_vs_pairwise:.2f}x", "~1.7x (large groups)"),
    ]
    lines = ["Headline numbers (measured vs paper):"]
    for name, measured, paper in rows:
        lines.append(f"  {name:38s} measured={measured:>8s}  paper={paper}")
    return "\n".join(lines)
