"""Meta-scheduler figure: adaptive hot-swap vs the fixed schemes.

Not a figure from the paper — this is the evaluation of the repo's
context-aware :class:`~repro.scheduling.meta.MetaScheduler` extension on
the adaptive scenarios (``regime_shift``, ``adaptive_churn``), whose
whole point is that *no fixed policy wins every phase of the run*.  The
comparison pits ``meta`` (pairwise primary, the paper's predictive
scheme as pressure-triggered fallback) against each of its inner schemes
run fixed for the whole schedule, so the delta is exactly the value of
switching.  The grid runs through :mod:`repro.api` like every other
figure; the switch telemetry threaded through
:class:`~repro.api.ScenarioResult` becomes the table's last columns.
"""

from __future__ import annotations

from repro.api import (
    ExperimentPlan,
    ScenarioResult,
    SchedulerSuite,
    Session,
    overall_geomean,
)

__all__ = ["SCHEMES", "SCENARIOS", "plan", "run", "format_table"]

#: The fixed inner schemes, then the adaptive policy that swaps between
#: them; column order of the table.
SCHEMES: tuple[str, ...] = ("pairwise", "ours", "meta")

#: Scenarios with distinct operating regimes inside one run.
SCENARIOS: tuple[str, ...] = ("regime_shift", "adaptive_churn")


def plan(scenarios=SCENARIOS, n_mixes: int = 3, seed: int = 11,
         engine: str = "event", workers: int = 1) -> ExperimentPlan:
    """The declarative meta-vs-fixed grid."""
    return ExperimentPlan(schemes=SCHEMES, scenarios=scenarios,
                          n_mixes=n_mixes, seed=seed, engine=engine,
                          workers=workers)


def run(scenarios=SCENARIOS, n_mixes: int = 3, seed: int = 11,
        suite: SchedulerSuite | None = None, engine: str = "event",
        workers: int = 1,
        session: Session | None = None) -> list[ScenarioResult]:
    """Run the meta-scheduler comparison over the adaptive scenarios."""
    grid = plan(scenarios=scenarios, n_mixes=n_mixes, seed=seed,
                engine=engine, workers=workers)
    if session is not None:
        return session.run(grid)
    with Session(suite=suite, use_cache=False) as own_session:
        return own_session.run(grid)


def format_table(results: list[ScenarioResult]) -> str:
    """Render STP per scenario plus the meta policy's switch telemetry."""
    schemes = [s for s in SCHEMES
               if any(r.scheme == s for r in results)]
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    lines = ["Meta-scheduler vs fixed schemes (STP geomean):"]
    lines.append(f"{'scenario':>14s} "
                 + " ".join(f"{s:>10s}" for s in schemes))
    for scenario in scenarios:
        row = [f"{scenario:>14s}"]
        for scheme in schemes:
            value = next(r.stp_geomean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:10.2f}")
        lines.append(" ".join(row))
    if len(scenarios) > 1:
        lines.append(" ".join(
            [f"{'geomean':>14s}"]
            + [f"{overall_geomean(results, s):10.2f}" for s in schemes]))
    adaptive = [r for r in results if r.adaptive]
    if adaptive:
        lines.append("")
        lines.append("switch telemetry (means across mixes):")
        lines.append(f"{'scenario':>14s} {'scheme':>10s} {'switches':>9s}"
                     "  inner schemes visited")
        for row in adaptive:
            lines.append(f"{row.scenario:>14s} {row.scheme:>10s} "
                         f"{row.switches_mean:9.1f}  "
                         f"{' -> '.join(row.schemes_used)}")
    return "\n".join(lines)
