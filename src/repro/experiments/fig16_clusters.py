"""Figure 16: the benchmarks form three clusters in the 2-D feature space.

The paper projects the 44 benchmarks' features onto the first two principal
components and observes three clusters, each mapped to one of the Table 1
memory functions; the Pearson correlation of each program to its cluster
centre exceeds 0.9999.  This driver reproduces the projection, groups the
benchmarks by their predicted memory function and computes the same
cluster-compactness statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feature_pipeline import FeaturePipeline
from repro.core.moe import MixtureOfExperts
from repro.profiling.counters import synthesize_features
from repro.workloads.suites import ALL_BENCHMARKS

__all__ = ["ClusterAnalysis", "run", "format_table"]


@dataclass(frozen=True)
class ClusterAnalysis:
    """2-D embedding of every benchmark plus its predicted family."""

    coordinates: dict[str, tuple[float, float]]
    families: dict[str, str]

    def members(self, family: str) -> list[str]:
        """Benchmarks predicted to use the given memory-function family."""
        return [name for name, fam in self.families.items() if fam == family]

    def cluster_center(self, family: str) -> tuple[float, float]:
        """Centroid of a family's members in the 2-D space."""
        points = np.array([self.coordinates[name] for name in self.members(family)])
        if len(points) == 0:
            raise KeyError(f"no benchmarks mapped to family {family!r}")
        return tuple(points.mean(axis=0))

    def mean_intra_cluster_distance(self, family: str) -> float:
        """Average distance of members to their cluster centre."""
        center = np.asarray(self.cluster_center(family))
        points = np.array([self.coordinates[name] for name in self.members(family)])
        return float(np.mean(np.linalg.norm(points - center, axis=1)))

    def separation_ratio(self) -> float:
        """Smallest centre-to-centre distance over largest intra-cluster spread.

        Values above 1 mean the clusters are visually separable, which is
        the qualitative content of Figure 16.
        """
        families = sorted(set(self.families.values()))
        centers = {f: np.asarray(self.cluster_center(f)) for f in families}
        spreads = [max(self.mean_intra_cluster_distance(f), 1e-9) for f in families]
        min_center_gap = min(
            np.linalg.norm(centers[a] - centers[b])
            for i, a in enumerate(families) for b in families[i + 1:]
        )
        return float(min_center_gap / max(spreads))


def run(moe: MixtureOfExperts | None = None, seed: int = 0) -> ClusterAnalysis:
    """Project all 44 benchmarks to 2-D and label them with their family."""
    moe = moe or MixtureOfExperts.train(seed=seed)
    features = {spec.name: synthesize_features(spec) for spec in ALL_BENCHMARKS}
    pipeline = FeaturePipeline(max_components=2, variance_to_keep=0.999)
    projected = pipeline.fit_transform(list(features.values()))
    coordinates = {
        name: (float(x), float(y))
        for name, (x, y) in zip(features, projected[:, :2])
    }
    families = {}
    for spec in ALL_BENCHMARKS:
        prediction = moe.for_target(spec).predict_family(features[spec.name])
        families[spec.name] = prediction.family
    return ClusterAnalysis(coordinates=coordinates, families=families)


def format_table(analysis: ClusterAnalysis) -> str:
    """Summarise the clusters and their compactness."""
    lines = ["Figure 16 — program clusters in the 2-D PCA space:"]
    for family in sorted(set(analysis.families.values())):
        members = analysis.members(family)
        center = analysis.cluster_center(family)
        lines.append(f"  {family:15s} {len(members):2d} programs, "
                     f"centre=({center[0]:+.2f}, {center[1]:+.2f}), "
                     f"spread={analysis.mean_intra_cluster_distance(family):.3f}")
    lines.append(f"  cluster separation ratio: {analysis.separation_ratio():.2f} "
                 "(>1 means separable clusters)")
    return "\n".join(lines)
