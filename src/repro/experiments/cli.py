"""Command-line entry point to regenerate the paper's tables and figures.

Usage (after ``pip install -e .``; ``python -m repro.experiments`` is an
alias for ``python -m repro.experiments.cli``)::

    python -m repro.experiments --list
    python -m repro.experiments fig6 fig17 table5
    python -m repro.experiments all --quick
    python -m repro.experiments fig6 --workers 4 --engine event

Beyond the paper artefacts, ``--scenario`` runs any declarative scenario
(:mod:`repro.scenarios`) — a registry name or a spec JSON path — across a
set of scheduling schemes::

    python -m repro.experiments --list-scenarios
    python -m repro.experiments --scenario poisson_hetero_demo
    python -m repro.experiments --scenario my_spec.json --schemes oracle,pairwise
    python -m repro.experiments --scenario L5 --n-mixes 5 --workers 4 \
        --stream --cells-json cells.json

Everything runs through the public API (:mod:`repro.api`): the CLI builds
an :class:`~repro.api.ExperimentPlan` — scheme and scenario names are
validated *eagerly*, with errors that list what is registered — and
executes it in one shared :class:`~repro.api.Session`, which owns the
trained-model disk cache under ``.cache/`` (``--no-cache`` opts out) and
the worker pool.  ``--stream`` prints each (scenario, scheme, mix) cell
as it completes; ``--cells-json`` exports the typed per-cell results
(including per-job records) as JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    ExperimentPlan,
    HorizonTruncationError,
    PlanError,
    Session,
    UnknownSchemeError,
    cells_to_json,
    fold_cells,
)
from repro.cluster.engine import STEP_MODES
from repro.cluster.faults import FAULT_PROFILES, load_fault_spec
from repro.cluster.simulator import KERNELS
from repro.experiments import (
    fig3_memory_curves,
    fig4_pca,
    fig6_overall,
    fig7_8_utilization,
    fig9_unified,
    fig10_online_search,
    fig11_12_overhead,
    fig13_cpu_load,
    fig14_interference,
    fig15_parsec,
    fig16_clusters,
    fig17_accuracy,
    fig18_curves,
    fig_meta,
    headline,
    table5_classifiers,
)
from repro.scenarios import load_scenario, scenario_names, SCENARIO_REGISTRY

__all__ = ["main", "EXPERIMENTS", "DEFAULT_SCENARIO_SCHEMES"]

#: Schemes compared by default in ``--scenario`` mode.
DEFAULT_SCENARIO_SCHEMES: tuple[str, ...] = ("isolated", "pairwise", "ours",
                                             "oracle")


def _run_fig6(session, options):
    scenarios = ("L1", "L3", "L5", "L8", "L10") if options.quick else tuple(
        f"L{i}" for i in range(1, 11))
    results = fig6_overall.run(scenarios=scenarios,
                               n_mixes=2 if options.quick else 5,
                               include_learned=options.with_learned,
                               engine=options.engine,
                               workers=options.workers, session=session)
    print(fig6_overall.format_table(results))
    print(headline.format_table(headline.summarize(results)))


def _run_fig9(session, options):
    scenarios = (("L3", "L5", "L8") if options.quick
                 else tuple(f"L{i}" for i in range(1, 11)))
    print(fig9_unified.format_table(
        fig9_unified.run(scenarios=scenarios,
                         n_mixes=1 if options.quick else 3,
                         include_learned=options.with_learned,
                         engine=options.engine,
                         workers=options.workers, session=session)))


def _run_fig10(session, options):
    scenarios = (("L3", "L5") if options.quick
                 else tuple(f"L{i}" for i in range(1, 11)))
    print(fig10_online_search.format_table(
        fig10_online_search.run(scenarios=scenarios,
                                n_mixes=1 if options.quick else 3,
                                engine=options.engine,
                                workers=options.workers, session=session)))


def _run_fig7(session, options):
    print(fig7_8_utilization.format_table(
        fig7_8_utilization.run(suite=session.suite, engine=options.engine)))


def _run_fig11_12(session, options):
    scenarios = (("L1", "L5") if options.quick
                 else ("L1", "L3", "L5", "L8", "L10"))
    per_scenario = fig11_12_overhead.run_per_scenario(scenarios=scenarios,
                                                      n_mixes=1,
                                                      suite=session.suite,
                                                      engine=options.engine)
    per_benchmark = fig11_12_overhead.run_per_benchmark()
    print(fig11_12_overhead.format_table(per_scenario, per_benchmark))


def _run_fig14(session, options):
    kwargs = ({"co_runners_per_target": 4} if options.quick
              else {"co_runners_per_target": 10})
    print(fig14_interference.format_table(
        fig14_interference.run(suite=session.suite, engine=options.engine,
                               **kwargs)))


def _run_fig_meta(session, options):
    scenarios = (("regime_shift",) if options.quick else fig_meta.SCENARIOS)
    print(fig_meta.format_table(
        fig_meta.run(scenarios=scenarios,
                     n_mixes=1 if options.quick else 3,
                     engine=options.engine,
                     workers=options.workers, session=session)))


#: Experiment name -> (description, runner taking (session, options)).
EXPERIMENTS = {
    "fig3": ("Figure 3 — Sort/PageRank memory curves",
             lambda session, options: print(fig3_memory_curves.format_table(
                 fig3_memory_curves.run(moe=session.suite.moe)))),
    "fig4": ("Figure 4 / Table 2 — PCA variance and feature importance",
             lambda session, options: print(fig4_pca.format_table(
                 fig4_pca.run(dataset=session.suite.dataset)))),
    "fig6": ("Figure 6 — STP/ANTT for Pairwise, Quasar, ours, Oracle", _run_fig6),
    "fig7": ("Figures 7/8 — Table 4 mix utilisation and turnaround", _run_fig7),
    "fig9": ("Figure 9 — unified single-model comparison", _run_fig9),
    "fig10": ("Figure 10 — online-search comparison", _run_fig10),
    "fig11": ("Figures 11/12 — profiling overhead", _run_fig11_12),
    "fig13": ("Figure 13 — CPU load distribution",
              lambda session, options: print(fig13_cpu_load.format_table(
                  fig13_cpu_load.run()))),
    "fig14": ("Figure 14 — Spark co-location interference", _run_fig14),
    "fig15": ("Figure 15 — PARSEC co-location interference",
              lambda session, options: print(fig15_parsec.format_table(
                  fig15_parsec.run()))),
    "fig16": ("Figure 16 — feature-space clusters",
              lambda session, options: print(fig16_clusters.format_table(
                  fig16_clusters.run(moe=session.suite.moe)))),
    "fig17": ("Figure 17 — prediction accuracy",
              lambda session, options: print(fig17_accuracy.format_table(
                  fig17_accuracy.run(moe=session.suite.moe)))),
    "fig18": ("Figure 18 — per-benchmark memory curves",
              lambda session, options: print(fig18_curves.format_table(
                  fig18_curves.run(moe=session.suite.moe)))),
    "fig_meta": ("Meta-scheduler vs fixed schemes on adaptive scenarios",
                 _run_fig_meta),
    "table5": ("Table 5 — classifier comparison",
               lambda session, options: print(table5_classifiers.format_table(
                   table5_classifiers.run(dataset=session.suite.dataset)))),
}


def format_scenario_table(spec, results) -> str:
    """Render the per-scheme metrics of one scenario run.

    Alongside the headline aggregates, the across-mix dispersion columns
    (STP standard deviation, ANTT-reduction range) show how stable each
    scheme is over the drawn mixes.  When the scenario declares dynamic
    cluster events, a second block reports the fault telemetry per
    scheme: cluster availability, jobs disrupted, work lost and the
    estimated re-run time.  When an adaptive scheme hot-swapped its
    inner policy mid-run, a third block reports the switch telemetry:
    mean switches per mix and the inner schemes visited.
    """
    lines = [f"scenario {spec.name}: topology={spec.topology} "
             f"arrival={spec.arrival.kind}"
             + (" faults=on" if spec.faults is not None else "")]
    if spec.description:
        lines.append(f"  {spec.description}")
    lines.append(f"{'scheme':18s} {'STP':>7s} {'±std':>6s} "
                 f"{'ANTT red.%':>11s} {'[min..max]':>17s} "
                 f"{'makespan(min)':>14s} {'util.%':>7s}")
    for row in results:
        antt_range = (f"[{row.antt_reduction_min:.1f}.."
                      f"{row.antt_reduction_max:.1f}]")
        lines.append(f"{row.scheme:18s} {row.stp_geomean:7.2f} "
                     f"{row.stp_std:6.2f} "
                     f"{row.antt_reduction_mean:11.1f} "
                     f"{antt_range:>17s} "
                     f"{row.makespan_mean_min:14.1f} "
                     f"{row.utilization_mean_percent:7.1f}")
    if any(row.faulty for row in results):
        lines.append("fault telemetry (means across mixes):")
        lines.append(f"{'scheme':18s} {'avail.%':>8s} {'failures':>9s} "
                     f"{'preempt.':>9s} {'disrupted':>10s} "
                     f"{'lost(GB)':>9s} {'rerun(min)':>11s}")
        for row in results:
            if not row.faulty:
                continue
            lines.append(f"{row.scheme:18s} "
                         f"{row.availability_mean_percent:8.2f} "
                         f"{row.node_failures_mean:9.1f} "
                         f"{row.preemptions_mean:9.1f} "
                         f"{row.jobs_disrupted_mean:10.1f} "
                         f"{row.work_lost_gb_mean:9.1f} "
                         f"{row.rerun_time_mean_min:11.1f}")
    if any(row.adaptive for row in results):
        lines.append("scheme-switch telemetry (adaptive schemes):")
        lines.append(f"{'scheme':18s} {'switches':>9s}  inner schemes visited")
        for row in results:
            if not row.adaptive:
                continue
            lines.append(f"{row.scheme:18s} "
                         f"{row.switches_mean:9.1f}  "
                         f"{' -> '.join(row.schemes_used)}")
    return "\n".join(lines)


def _resolve_scenario_spec(args):
    """Resolve ``--scenario`` (+ optional ``--faults`` overlay) to a spec.

    Returns the spec, or ``None`` after printing the error — shared by
    scenario mode and ``env-rollout``.
    """
    try:
        # TypeError covers wrong-typed values in a user's spec JSON
        # (e.g. a string where a number belongs).
        spec = load_scenario(args.scenario)
    except (KeyError, ValueError, TypeError, OSError) as error:
        print(f"cannot load scenario {args.scenario!r}: {error}",
              file=sys.stderr)
        return None
    if args.faults is not None and args.faults != "spec":
        # Overlay (or strip, with "none") a fault profile onto the spec;
        # a bare --faults keeps the scenario's own declared dynamics.
        import dataclasses

        try:
            fault_spec = load_fault_spec(args.faults)
        except (KeyError, ValueError, TypeError, OSError) as error:
            print(f"cannot load fault spec {args.faults!r}: {error}",
                  file=sys.stderr)
            return None
        spec = dataclasses.replace(spec, faults=fault_spec)
    return spec


def _run_env_rollout(args) -> int:
    """Run one scheduling-environment episode (``env-rollout`` mode)."""
    from repro.scheduling.registry import UnknownSchemeError as UnknownPolicy

    spec = _resolve_scenario_spec(args)
    if spec is None:
        return 2
    with Session(use_cache=not args.no_cache) as session:
        try:
            episode = session.rollout(spec, policy=args.policy,
                                      seed=args.seed, engine=args.engine,
                                      kernel=args.kernel, reward=args.reward,
                                      obs_mode=args.obs_mode or "dataclass")
        except UnknownPolicy as error:
            print(f"cannot resolve policy {args.policy!r}: {error}",
                  file=sys.stderr)
            return 2
        except HorizonTruncationError as error:
            print(str(error), file=sys.stderr)
            return 1
    print(f"episode {episode.scenario} policy={episode.policy} "
          f"seed={episode.seed} engine={episode.engine}: "
          f"steps={episode.steps} STP={episode.stp:.2f} "
          f"ANTT={episode.antt:.2f} makespan={episode.makespan_min:.1f}min "
          f"total_reward[{episode.reward_kind}]={episode.total_reward:.3f}")
    if episode.faults is not None:
        print(f"  faults: {episode.faults.node_failures} node failure(s), "
              f"{episode.faults.preemptions} preemption(s), "
              f"{episode.faults.jobs_disrupted} job(s) disrupted, "
              f"{episode.faults.work_lost_gb:.1f}GB lost, "
              f"availability {episode.faults.availability_percent:.2f}%")
    if args.episode_json:
        episode.to_json(path=args.episode_json)
        print(f"wrote episode result to {args.episode_json}")
    else:
        print(episode.to_json(), end="")
    return 0


def _run_env_train(args) -> int:
    """Train a learned scheduler in the gym (``env-train`` mode)."""
    from repro.env.train import ReinforceLearner, TrainConfig

    spec = _resolve_scenario_spec(args)
    if spec is None:
        return 2
    if not args.checkpoint:
        print("env-train requires --checkpoint PATH.npz (where the best "
              "iterate is saved)", file=sys.stderr)
        return 2
    try:
        config = TrainConfig(iters=args.iters,
                             episodes_per_iter=args.episodes_per_iter,
                             seed=args.seed, eval_seed=args.eval_seed,
                             reward=args.reward,
                             engine=args.engine, kernel=args.kernel,
                             workers=args.workers,
                             obs_mode=args.obs_mode or "features",
                             update_mode=args.update_mode)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    learner = ReinforceLearner(spec, config)

    def progress(stats):
        line = (f"iter {stats.iteration:4d}: "
                f"return={stats.mean_return:8.3f} "
                f"[{stats.min_return:.3f}..{stats.max_return:.3f}] "
                f"entropy={stats.mean_entropy:.3f} "
                f"|grad|={stats.grad_norm:.4f}")
        if stats.eval_stp is not None:
            line += f" eval_STP={stats.eval_stp:.3f}"
        line += (f" [collect {stats.collect_s:.1f}s"
                 f" update {stats.update_s:.1f}s")
        line += (f" eval {stats.eval_s:.1f}s]" if stats.eval_stp is not None
                 else "]")
        print(line, flush=True)

    result = learner.train(checkpoint=args.checkpoint, progress=progress)
    print(f"trained {result.scenario} for {len(result.curve)} iteration(s): "
          f"best eval STP {result.best_eval_stp:.3f} "
          f"(iteration {result.best_iteration}), "
          f"final eval STP {result.final_eval_stp:.3f}")
    print(f"checkpoint (best iterate) written to {result.checkpoint}")
    if args.train_json:
        result.to_json(path=args.train_json)
        print(f"wrote training curve to {args.train_json}")
    return 0


def _run_scenario_mode(args) -> int:
    """Run one declarative scenario across scheduling schemes."""
    spec = _resolve_scenario_spec(args)
    if spec is None:
        return 2
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    try:
        plan = ExperimentPlan(schemes=schemes, scenarios=(spec,),
                              n_mixes=args.n_mixes, seed=args.seed,
                              engine=args.engine, kernel=args.kernel,
                              workers=args.workers)
    except (PlanError, UnknownSchemeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    cells = []
    try:
        with Session(use_cache=not args.no_cache) as session:
            for cell in session.stream(plan):
                cells.append(cell)
                if args.stream:
                    print(f"cell {cell.scenario}/{cell.scheme} "
                          f"mix={cell.mix_index}: STP={cell.stp:.2f} "
                          f"makespan={cell.makespan_min:.1f}min "
                          f"({len(cell.jobs)} jobs)")
    except HorizonTruncationError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.cells_json:
        cells_to_json(cells, path=args.cells_json)
        print(f"wrote {len(cells)} cell result(s) to {args.cells_json}")
    results = fold_cells(cells, scenario_order=plan.scenario_names,
                         scheme_order=plan.schemes)
    print(format_scenario_table(spec, results))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments`` (and ``.cli``)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures, or run a "
                    "declarative scenario.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (see --list), 'all', "
                             "'env-rollout' to run a scheduling-environment "
                             "episode on --scenario, or 'env-train' to "
                             "train a learned scheduler on --scenario "
                             "(saving --checkpoint)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--list-schemes", action="store_true",
                        help="list registered scheduling schemes and exit")
    parser.add_argument("--scenario", metavar="NAME|SPEC.json",
                        help="run one declarative scenario (registry name "
                             "or spec JSON path) across --schemes")
    parser.add_argument("--schemes", default=",".join(DEFAULT_SCENARIO_SCHEMES),
                        metavar="CSV",
                        help="comma-separated schemes for --scenario "
                             f"(default: {','.join(DEFAULT_SCENARIO_SCHEMES)})")
    parser.add_argument("--faults", nargs="?", const="spec",
                        metavar="PROFILE|SPEC.json|none",
                        help="in --scenario mode: bare --faults runs the "
                             "scenario's own declared dynamics (the "
                             "default); a value overlays a registered "
                             "fault profile "
                             f"({', '.join(FAULT_PROFILES)}) or a "
                             "FaultSpec JSON document; 'none' strips the "
                             "scenario's faults")
    parser.add_argument("--n-mixes", type=int, default=1, metavar="K",
                        help="random mixes per scenario in --scenario mode "
                             "(default: 1)")
    parser.add_argument("--seed", type=int, default=11, metavar="N",
                        help="seed of the generator driving mix generation "
                             "and arrival processes (default: 11)")
    parser.add_argument("--policy", default="random", metavar="NAME",
                        help="env-rollout mode: the policy driving the "
                             "episode — 'random', 'greedy', any registered "
                             "scheme name, or 'learned:PATH.npz' to serve a "
                             "specific trained checkpoint (default: random)")
    parser.add_argument("--obs-mode", choices=["dataclass", "features"],
                        default=None, metavar="MODE",
                        help="env-rollout/env-train mode: observation path — "
                             "'features' is the array-backed fast path "
                             "(bit-identical decisions, rewards and STP; "
                             "env-train collects with it by default), "
                             "'dataclass' the typed oracle (env-rollout "
                             "default)")
    parser.add_argument("--update-mode", choices=["gemm", "rows"],
                        default="gemm", metavar="MODE",
                        help="env-train mode: gradient accumulation — 'gemm' "
                             "packs the batch into matrix products (default), "
                             "'rows' is the row-at-a-time bit-stability "
                             "oracle")
    parser.add_argument("--iters", type=int, default=60, metavar="N",
                        help="env-train mode: training iterations "
                             "(default: 60)")
    parser.add_argument("--episodes-per-iter", type=int, default=8,
                        metavar="N",
                        help="env-train mode: sampled episodes per "
                             "iteration (default: 8)")
    parser.add_argument("--eval-seed", type=int, default=None, metavar="N",
                        help="env-train mode: environment seed of the "
                             "deterministic eval episode that selects the "
                             "checkpointed iterate (default: the first "
                             "training episode seed)")
    parser.add_argument("--checkpoint", metavar="PATH.npz",
                        help="env-train mode: where the best-eval policy "
                             "checkpoint is written (required)")
    parser.add_argument("--train-json", metavar="PATH",
                        help="env-train mode: also write the TrainResult "
                             "curve telemetry as JSON")
    parser.add_argument("--reward", default="stp_delta",
                        choices=["stp_delta", "antt_delta"],
                        help="env-rollout mode: per-step reward shape "
                             "(default: stp_delta — the episode return "
                             "equals the final STP)")
    parser.add_argument("--episode-json", metavar="PATH",
                        help="env-rollout mode: write the typed "
                             "EpisodeResult JSON here instead of printing "
                             "it to stdout")
    parser.add_argument("--stream", action="store_true",
                        help="in --scenario mode, print each grid cell as "
                             "it completes")
    parser.add_argument("--cells-json", metavar="PATH",
                        help="in --scenario mode, export the typed per-cell "
                             "results (with per-job records) as JSON")
    parser.add_argument("--with-learned", action="store_true",
                        help="add the trained 'learned' scheme as an extra "
                             "column in the fig6/fig9 grids (serves the "
                             "committed checkpoint unless "
                             "$REPRO_LEARNED_CHECKPOINT overrides it)")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced simulation grids")
    parser.add_argument("--engine", choices=list(STEP_MODES), default="event",
                        help="simulation engine: 'event' jumps between "
                             "state changes, 'fixed' advances in constant "
                             "steps (default: event)")
    parser.add_argument("--kernel", choices=list(KERNELS), default="vector",
                        help="per-epoch hot-loop mode for --scenario and "
                             "env-rollout: 'vector' reduces over the "
                             "structured state arrays, 'object' runs the "
                             "per-object scalar parity oracle — "
                             "trajectories are bit-for-bit identical "
                             "(default: vector)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the scenario-grid "
                             "experiments fig6/fig9/fig10 and --scenario "
                             "mode; other experiments run in-process "
                             "(default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the trained-model disk cache (.cache/): "
                             "always retrain, never write")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.n_mixes < 1:
        parser.error("--n-mixes must be at least 1")
    if args.faults is not None and not args.scenario:
        parser.error("--faults only applies to --scenario mode")

    if args.list_scenarios:
        from repro.cluster.topologies import topology_specs

        tiers: dict[str, list[str]] = {"standard": [], "mega": []}
        for name in scenario_names():
            tiers["mega" if name.startswith("mega_") else "standard"].append(name)
        for tier, label in (("standard", "Standard tier (paper-scale)"),
                            ("mega", "Mega tier (fleet-scale, array kernel)")):
            if not tiers[tier]:
                continue
            print(f"{label}:")
            for name in tiers[tier]:
                spec = SCENARIO_REGISTRY[name]
                n_jobs = spec.n_apps if spec.n_apps is not None else len(spec.jobs)
                n_nodes = sum(group.count
                              for group in topology_specs(spec.topology))
                columns = f"  {name:18s} {n_jobs:>6d} jobs  {n_nodes:>5d} nodes  "
                if tier == "mega":
                    # Pending-queue depth at t=0: batch arrivals drop the
                    # whole workload into the array-backed pending queue
                    # at once (the scheduler-bound regime); open arrival
                    # processes start it empty and fill it over time.
                    depth = n_jobs if spec.arrival.kind == "batch" else 0
                    columns += f"queue@t0={depth:<6d} "
                print(columns + spec.description)
        return 0

    if args.list_schemes:
        from repro.scheduling.registry import scheme_info, scheme_names

        for name in scheme_names():
            requires = scheme_info(name).requires
            print(f"  {name:24s} requires: {requires or '-'}")
        return 0

    if args.experiments == ["env-rollout"]:
        if not args.scenario:
            parser.error("env-rollout requires --scenario")
        return _run_env_rollout(args)

    if args.experiments == ["env-train"]:
        if not args.scenario:
            parser.error("env-train requires --scenario")
        return _run_env_train(args)

    if args.scenario:
        if args.experiments:
            parser.error("--scenario cannot be combined with experiment "
                         "names; run them as separate invocations "
                         "(or use the 'env-rollout' mode)")
        return _run_scenario_mode(args)

    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:8s} {description}")
        return 0

    requested = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    with Session(use_cache=not args.no_cache) as session:
        # The figure experiments all read trained models; materialise them
        # once up front (from the disk cache when allowed), exactly as the
        # pre-API CLI did.
        session.ensure_trained()
        for name in requested:
            description, runner = EXPERIMENTS[name]
            print(f"\n=== {name}: {description} ===")
            runner(session, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
