"""Command-line entry point to regenerate the paper's tables and figures.

Usage (after ``pip install -e .``)::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli fig6 fig17 table5
    python -m repro.experiments.cli all --quick
    python -m repro.experiments.cli fig6 --workers 4 --engine event

Every experiment prints the same rows/series as the corresponding paper
artefact; ``--quick`` shrinks the simulation grids so the full set finishes
in a few minutes on a laptop.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig3_memory_curves,
    fig4_pca,
    fig6_overall,
    fig7_8_utilization,
    fig9_unified,
    fig10_online_search,
    fig11_12_overhead,
    fig13_cpu_load,
    fig14_interference,
    fig15_parsec,
    fig16_clusters,
    fig17_accuracy,
    fig18_curves,
    headline,
    table5_classifiers,
)
from repro.cluster.engine import STEP_MODES
from repro.experiments.common import SchedulerSuite

__all__ = ["main", "EXPERIMENTS"]


def _run_fig6(suite, options):
    scenarios = ("L1", "L3", "L5", "L8", "L10") if options.quick else tuple(
        f"L{i}" for i in range(1, 11))
    results = fig6_overall.run(scenarios=scenarios,
                               n_mixes=2 if options.quick else 5,
                               suite=suite, engine=options.engine,
                               workers=options.workers)
    print(fig6_overall.format_table(results))
    print(headline.format_table(headline.summarize(results)))


def _run_fig9(suite, options):
    scenarios = (("L3", "L5", "L8") if options.quick
                 else tuple(f"L{i}" for i in range(1, 11)))
    print(fig9_unified.format_table(
        fig9_unified.run(scenarios=scenarios,
                         n_mixes=1 if options.quick else 3,
                         suite=suite, engine=options.engine,
                         workers=options.workers)))


def _run_fig10(suite, options):
    scenarios = (("L3", "L5") if options.quick
                 else tuple(f"L{i}" for i in range(1, 11)))
    print(fig10_online_search.format_table(
        fig10_online_search.run(scenarios=scenarios,
                                n_mixes=1 if options.quick else 3,
                                suite=suite, engine=options.engine,
                                workers=options.workers)))


def _run_fig7(suite, options):
    print(fig7_8_utilization.format_table(
        fig7_8_utilization.run(suite=suite, engine=options.engine)))


def _run_fig11_12(suite, options):
    scenarios = (("L1", "L5") if options.quick
                 else ("L1", "L3", "L5", "L8", "L10"))
    per_scenario = fig11_12_overhead.run_per_scenario(scenarios=scenarios,
                                                      n_mixes=1, suite=suite,
                                                      engine=options.engine)
    per_benchmark = fig11_12_overhead.run_per_benchmark()
    print(fig11_12_overhead.format_table(per_scenario, per_benchmark))


def _run_fig14(suite, options):
    kwargs = ({"co_runners_per_target": 4} if options.quick
              else {"co_runners_per_target": 10})
    print(fig14_interference.format_table(
        fig14_interference.run(suite=suite, engine=options.engine, **kwargs)))


#: Experiment name -> (description, runner taking (suite, options)).
EXPERIMENTS = {
    "fig3": ("Figure 3 — Sort/PageRank memory curves",
             lambda suite, options: print(fig3_memory_curves.format_table(
                 fig3_memory_curves.run(moe=suite.moe)))),
    "fig4": ("Figure 4 / Table 2 — PCA variance and feature importance",
             lambda suite, options: print(fig4_pca.format_table(
                 fig4_pca.run(dataset=suite.dataset)))),
    "fig6": ("Figure 6 — STP/ANTT for Pairwise, Quasar, ours, Oracle", _run_fig6),
    "fig7": ("Figures 7/8 — Table 4 mix utilisation and turnaround", _run_fig7),
    "fig9": ("Figure 9 — unified single-model comparison", _run_fig9),
    "fig10": ("Figure 10 — online-search comparison", _run_fig10),
    "fig11": ("Figures 11/12 — profiling overhead", _run_fig11_12),
    "fig13": ("Figure 13 — CPU load distribution",
              lambda suite, options: print(fig13_cpu_load.format_table(
                  fig13_cpu_load.run()))),
    "fig14": ("Figure 14 — Spark co-location interference", _run_fig14),
    "fig15": ("Figure 15 — PARSEC co-location interference",
              lambda suite, options: print(fig15_parsec.format_table(
                  fig15_parsec.run()))),
    "fig16": ("Figure 16 — feature-space clusters",
              lambda suite, options: print(fig16_clusters.format_table(
                  fig16_clusters.run(moe=suite.moe)))),
    "fig17": ("Figure 17 — prediction accuracy",
              lambda suite, options: print(fig17_accuracy.format_table(
                  fig17_accuracy.run(moe=suite.moe)))),
    "fig18": ("Figure 18 — per-benchmark memory curves",
              lambda suite, options: print(fig18_curves.format_table(
                  fig18_curves.run(moe=suite.moe)))),
    "table5": ("Table 5 — classifier comparison",
               lambda suite, options: print(table5_classifiers.format_table(
                   table5_classifiers.run(dataset=suite.dataset)))),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments.cli``."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (see --list), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced simulation grids")
    parser.add_argument("--engine", choices=list(STEP_MODES), default="event",
                        help="simulation engine: 'event' jumps between "
                             "state changes, 'fixed' advances in constant "
                             "steps (default: event)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the scenario-grid "
                             "experiments fig6/fig9/fig10; other "
                             "experiments run in-process (default: 1)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:8s} {description}")
        return 0

    requested = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    suite = SchedulerSuite()
    for name in requested:
        description, runner = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        runner(suite, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
