"""Experiment drivers that regenerate every table and figure of the paper.

Each module exposes a ``run(...)`` function returning a plain result object
and a ``format_*`` helper that renders the same rows/series the paper
reports.  Absolute numbers differ from the paper (the substrate is a
simulator, not the authors' 40-node testbed), but the orderings and rough
factors are expected to hold; ``EXPERIMENTS.md`` records paper-vs-measured
values for every experiment.

| Paper artefact | Module |
|----------------|--------|
| Table 1        | ``repro.core.memory_functions`` (definition) |
| Figure 3       | :mod:`repro.experiments.fig3_memory_curves` |
| Figure 4 / Table 2 | :mod:`repro.experiments.fig4_pca` |
| Table 3 / Table 4  | :mod:`repro.workloads.mixes` (definitions) |
| Figure 6       | :mod:`repro.experiments.fig6_overall` |
| Figures 7, 8   | :mod:`repro.experiments.fig7_8_utilization` |
| Figure 9       | :mod:`repro.experiments.fig9_unified` |
| Figure 10      | :mod:`repro.experiments.fig10_online_search` |
| Figures 11, 12 | :mod:`repro.experiments.fig11_12_overhead` |
| Figure 13      | :mod:`repro.experiments.fig13_cpu_load` |
| Figure 14      | :mod:`repro.experiments.fig14_interference` |
| Figure 15      | :mod:`repro.experiments.fig15_parsec` |
| Figure 16      | :mod:`repro.experiments.fig16_clusters` |
| Figure 17      | :mod:`repro.experiments.fig17_accuracy` |
| Figure 18      | :mod:`repro.experiments.fig18_curves` |
| Table 5        | :mod:`repro.experiments.table5_classifiers` |
| Headline numbers | :mod:`repro.experiments.headline` |

Beyond the paper, :mod:`repro.experiments.fig_meta` evaluates the
context-aware meta-scheduler extension against its fixed inner schemes
on the adaptive (multi-regime) scenarios.
"""

from repro.api import ScenarioResult, SchedulerSuite

__all__ = ["SchedulerSuite", "ScenarioResult"]
