"""Figures 11 and 12: profiling overhead.

Figure 11 shows, per runtime scenario, the average time spent on feature
extraction and model calibration next to the total execution time;
Figure 12 breaks the same quantities down per training benchmark using a
~280 GB input.  The paper reports feature extraction at ~5 % and
calibration at ~8 % of total execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import paper_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.api import SchedulerSuite
from repro.profiling.profiler import Profiler
from repro.workloads.mixes import make_scenario_mixes
from repro.workloads.suites import TRAINING_BENCHMARKS

__all__ = ["ScenarioOverhead", "BenchmarkOverhead", "run_per_scenario",
           "run_per_benchmark", "format_table"]


@dataclass(frozen=True)
class ScenarioOverhead:
    """Average profiling overhead vs total execution time for one scenario."""

    scenario: str
    feature_extraction_min: float
    calibration_min: float
    total_execution_min: float

    @property
    def overhead_fraction(self) -> float:
        """Profiling time as a fraction of total execution time."""
        return ((self.feature_extraction_min + self.calibration_min)
                / self.total_execution_min)


@dataclass(frozen=True)
class BenchmarkOverhead:
    """Profiling overhead vs isolated runtime for one benchmark (~280 GB)."""

    benchmark: str
    feature_extraction_min: float
    calibration_min: float
    total_execution_min: float

    @property
    def overhead_fraction(self) -> float:
        """Profiling time as a fraction of the total runtime."""
        return ((self.feature_extraction_min + self.calibration_min)
                / self.total_execution_min)


def run_per_scenario(scenarios=("L1", "L3", "L5", "L8", "L10"),
                     n_mixes: int = 2, seed: int = 11,
                     suite: SchedulerSuite | None = None,
                     engine: str = "event") -> list[ScenarioOverhead]:
    """Figure 11: per-scenario profiling overhead under our scheduler."""
    suite = suite or SchedulerSuite()
    results = []
    for scenario in scenarios:
        mixes = make_scenario_mixes(scenario, n_mixes=n_mixes, seed=seed)
        feature, calibration, execution = [], [], []
        for mix in mixes:
            simulator = ClusterSimulator(paper_cluster(),
                                         suite.factory("ours")(), seed=seed,
                                         step_mode=engine)
            sim_result = simulator.run(mix)
            for app in sim_result.apps.values():
                feature.append(app.feature_extraction_min)
                calibration.append(app.calibration_min)
                execution.append(app.turnaround_min())
        results.append(ScenarioOverhead(
            scenario=scenario,
            feature_extraction_min=float(np.mean(feature)),
            calibration_min=float(np.mean(calibration)),
            total_execution_min=float(np.mean(execution)),
        ))
    return results


def run_per_benchmark(input_gb: float = 280.0,
                      seed: int = 0) -> list[BenchmarkOverhead]:
    """Figure 12: per-benchmark profiling overhead for ~280 GB inputs."""
    profiler = Profiler(seed=seed)
    results = []
    for spec in TRAINING_BENCHMARKS:
        report = profiler.profile(spec.name, spec, input_gb)
        executors = max(1, min(40, int(round(input_gb / 25.0))))
        total = spec.isolated_runtime_min(input_gb, n_executors=executors)
        results.append(BenchmarkOverhead(
            benchmark=spec.name,
            feature_extraction_min=report.feature_extraction_min,
            calibration_min=report.calibration_min,
            total_execution_min=total + report.total_profiling_min,
        ))
    return results


def format_table(per_scenario: list[ScenarioOverhead],
                 per_benchmark: list[BenchmarkOverhead]) -> str:
    """Render both overhead breakdowns."""
    lines = ["Figure 11 — profiling overhead per scenario (minutes):"]
    lines.append(f"{'scenario':>9s} {'feature':>9s} {'calib.':>9s} "
                 f"{'total exec':>11s} {'overhead %':>11s}")
    for row in per_scenario:
        lines.append(f"{row.scenario:>9s} {row.feature_extraction_min:9.2f} "
                     f"{row.calibration_min:9.2f} {row.total_execution_min:11.1f} "
                     f"{row.overhead_fraction * 100:11.1f}")
    lines.append("")
    lines.append("Figure 12 — profiling overhead per benchmark (~280 GB input):")
    lines.append(f"{'benchmark':>18s} {'feature':>9s} {'calib.':>9s} "
                 f"{'total':>9s} {'overhead %':>11s}")
    for row in per_benchmark:
        lines.append(f"{row.benchmark:>18s} {row.feature_extraction_min:9.2f} "
                     f"{row.calibration_min:9.2f} {row.total_execution_min:9.1f} "
                     f"{row.overhead_fraction * 100:11.1f}")
    return "\n".join(lines)
