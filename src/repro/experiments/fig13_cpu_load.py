"""Figure 13: distribution of CPU load when benchmarks run in isolation.

The paper's motivation for co-location is that most of the 44 benchmarks
use well under 40 % of the CPU when given a host exclusively; this driver
measures the isolated CPU load of each benchmark through the profiler and
reports the same histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.profiler import Profiler
from repro.workloads.suites import ALL_BENCHMARKS

__all__ = ["CpuLoadHistogram", "run", "format_table"]

#: Histogram bin edges in percent, as in Figure 13.
BIN_EDGES_PERCENT = (0, 10, 20, 30, 40, 50, 60)


@dataclass(frozen=True)
class CpuLoadHistogram:
    """Measured isolated CPU loads and their Figure 13 histogram."""

    loads_percent: dict[str, float]
    bin_edges_percent: tuple[int, ...]
    counts: tuple[int, ...]

    @property
    def fraction_below_40_percent(self) -> float:
        """Fraction of benchmarks whose isolated CPU load is below 40 %."""
        loads = np.asarray(list(self.loads_percent.values()))
        return float(np.mean(loads < 40.0))


def run(seed: int = 0) -> CpuLoadHistogram:
    """Measure the isolated CPU load of all 44 benchmarks."""
    profiler = Profiler(seed=seed)
    loads = {spec.name: profiler.measure_cpu_load(spec) * 100.0
             for spec in ALL_BENCHMARKS}
    counts, _ = np.histogram(list(loads.values()), bins=BIN_EDGES_PERCENT)
    return CpuLoadHistogram(
        loads_percent=loads,
        bin_edges_percent=BIN_EDGES_PERCENT,
        counts=tuple(int(c) for c in counts),
    )


def format_table(histogram: CpuLoadHistogram) -> str:
    """Render the Figure 13 histogram."""
    lines = ["Figure 13 — CPU load distribution in isolation mode:"]
    edges = histogram.bin_edges_percent
    for (low, high), count in zip(zip(edges[:-1], edges[1:]), histogram.counts):
        bar = "#" * count
        lines.append(f"  {low:2d}-{high:2d}%: {count:2d} {bar}")
    lines.append(f"  below 40%: {histogram.fraction_below_40_percent * 100:.0f}% "
                 "of benchmarks")
    return "\n".join(lines)
