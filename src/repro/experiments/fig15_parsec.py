"""Figure 15: slowdown of PARSEC benchmarks co-located with Spark tasks.

Computation-intensive PARSEC applications are run together with each of the
44 Spark benchmarks under the memory-aware co-location scheme; the paper
reports slowdowns below ~30 %, mostly below 20 %.  PARSEC binaries are not
available offline, so the slowdown of each pair is computed by the
interference model described in :mod:`repro.metrics.slowdown`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.simulator import InterferenceModel
from repro.metrics.slowdown import parsec_colocation_slowdown_percent
from repro.workloads.parsec import PARSEC_BENCHMARKS
from repro.workloads.suites import ALL_BENCHMARKS

__all__ = ["ParsecSlowdown", "run", "format_table"]


@dataclass(frozen=True)
class ParsecSlowdown:
    """Slowdown distribution of one PARSEC benchmark across Spark co-runners."""

    parsec: str
    slowdowns_percent: tuple[float, ...]

    @property
    def median(self) -> float:
        """Median slowdown in percent."""
        return float(np.median(self.slowdowns_percent))

    @property
    def maximum(self) -> float:
        """Worst-case slowdown in percent."""
        return float(np.max(self.slowdowns_percent))


def run(interference: InterferenceModel | None = None) -> list[ParsecSlowdown]:
    """Compute the slowdown of every PARSEC × Spark pairing."""
    interference = interference or InterferenceModel()
    results = []
    for parsec in PARSEC_BENCHMARKS:
        slowdowns = [
            parsec_colocation_slowdown_percent(parsec, spark, interference)
            for spark in ALL_BENCHMARKS
        ]
        results.append(ParsecSlowdown(
            parsec=parsec.name,
            slowdowns_percent=tuple(float(s) for s in slowdowns),
        ))
    return results


def format_table(results: list[ParsecSlowdown]) -> str:
    """Render per-PARSEC slowdown summaries, like Figure 15."""
    lines = ["Figure 15 — slowdown of PARSEC benchmarks co-located with Spark:"]
    lines.append(f"{'benchmark':>15s} {'median %':>9s} {'max %':>7s}")
    for row in results:
        lines.append(f"{row.parsec:>15s} {row.median:9.1f} {row.maximum:7.1f}")
    overall = np.concatenate([r.slowdowns_percent for r in results])
    lines.append(f"overall: mean {overall.mean():.1f}%, max {overall.max():.1f}%")
    return "\n".join(lines)
