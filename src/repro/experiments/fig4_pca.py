"""Figure 4 / Table 2: PCA variance and raw-feature importance.

Figure 4a reports how much of the feature variance each retained principal
component accounts for (the top five cover ~95 %); Figure 4b ranks the raw
features by their contribution after a Varimax rotation, with the cache
features (L1_TCM, L1_DCM, L1_STM) and ``vcache`` dominating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feature_pipeline import FeaturePipeline
from repro.core.training import TrainingDataset, collect_training_data

__all__ = ["PcaAnalysis", "run", "format_table"]


@dataclass(frozen=True)
class PcaAnalysis:
    """Variance breakdown and feature importances of the trained pipeline."""

    explained_variance_ratio: tuple[float, ...]
    cumulative_variance: float
    feature_importance: dict[str, float]

    def top_features(self, k: int = 5) -> list[str]:
        """The ``k`` most important raw features."""
        return list(self.feature_importance)[:k]


def run(dataset: TrainingDataset | None = None,
        variance_to_keep: float = 0.95, max_components: int = 5) -> PcaAnalysis:
    """Fit the feature pipeline on the training programs and analyse it."""
    dataset = dataset or collect_training_data()
    pipeline = FeaturePipeline(variance_to_keep=variance_to_keep,
                               max_components=max_components)
    pipeline.fit([example.features for example in dataset.examples])
    ratios = tuple(float(r) for r in pipeline.explained_variance_ratio())
    return PcaAnalysis(
        explained_variance_ratio=ratios,
        cumulative_variance=float(sum(ratios)),
        feature_importance=pipeline.feature_importance(),
    )


def format_table(analysis: PcaAnalysis, top_k: int = 5) -> str:
    """Render the Figure 4 panels as text."""
    lines = ["Principal components (Figure 4a):"]
    for i, ratio in enumerate(analysis.explained_variance_ratio, start=1):
        lines.append(f"  PC{i}: {ratio * 100.0:5.1f}% of variance")
    lines.append(f"  cumulative: {analysis.cumulative_variance * 100.0:.1f}%")
    lines.append("")
    lines.append(f"Top raw features by contribution (Figure 4b / Table 2):")
    for name in analysis.top_features(top_k):
        lines.append(f"  {name:10s} {analysis.feature_importance[name]:5.1f}%")
    return "\n".join(lines)
