"""Shared names for the figure/table experiment drivers.

The experiment engine itself lives in :mod:`repro.api` — build an
:class:`~repro.api.ExperimentPlan` and execute it through a
:class:`~repro.api.Session` (``session.run(plan)`` for barrier
semantics, ``session.stream(plan)`` for typed per-cell results as they
complete).  Scheme names resolve through the plugin registry
(:mod:`repro.scheduling.registry`), so third-party policies register
themselves instead of editing this module.

What remains here are the aliases the figure drivers share
(:class:`SchedulerSuite`, :class:`ScenarioResult`,
:class:`HorizonTruncationError`, ``DEFAULT_SCENARIOS``,
``overall_geomean``) plus ``KNOWN_SCHEMES``, a live view of the scheme
registry.  The deprecated ``run_scenarios`` barrier shim has been
retired; call the session API directly.
"""

from __future__ import annotations

from repro.api.plan import DEFAULT_SCENARIOS
from repro.api.results import ScenarioResult, overall_geomean
from repro.api.session import HorizonTruncationError
from repro.api.suite import SchedulerSuite
from repro.scheduling.registry import scheme_names

__all__ = ["SchedulerSuite", "ScenarioResult", "DEFAULT_SCENARIOS",
           "HorizonTruncationError", "overall_geomean"]


def __getattr__(name: str):
    # KNOWN_SCHEMES used to be a hardcoded tuple; keep it importable as a
    # live snapshot of the plugin registry so late registrations show up.
    if name == "KNOWN_SCHEMES":
        return scheme_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
