"""Shared infrastructure for the scheduling experiments.

The comparative experiments (Figures 6–10) all follow the same recipe: for
each runtime scenario of Table 3, draw a number of random application
mixes, simulate every scheduling scheme on each mix, and aggregate STP
(geometric mean, as in Section 5.2) and ANTT reduction.  This module
provides that recipe once so the per-figure drivers stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import paper_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.core.moe import MixtureOfExperts
from repro.core.training import TrainingDataset, collect_training_data
from repro.metrics.throughput import ScheduleEvaluation, evaluate_schedule
from repro.ml.metrics import geometric_mean
from repro.scheduling import (
    IsolatedScheduler,
    OnlineSearchScheduler,
    PairwiseScheduler,
    make_moe_scheduler,
    make_oracle_scheduler,
    make_quasar_scheduler,
    make_unified_scheduler,
)
from repro.workloads.mixes import Job, make_scenario_mixes

__all__ = ["SchedulerSuite", "ScenarioResult", "run_scenarios", "DEFAULT_SCENARIOS"]

#: Scenario labels used by default (all of Table 3).
DEFAULT_SCENARIOS: tuple[str, ...] = ("L1", "L2", "L3", "L4", "L5",
                                      "L6", "L7", "L8", "L9", "L10")


@dataclass
class SchedulerSuite:
    """Lazily constructed scheduler factories sharing one trained predictor.

    Training the mixture of experts and the comparison models once and
    sharing them across every simulated mix mirrors the paper's one-off
    offline training cost (Section 3.3) and keeps the experiment grid fast.
    """

    dataset: TrainingDataset = field(default_factory=collect_training_data)
    moe: MixtureOfExperts | None = None

    def __post_init__(self) -> None:
        if self.moe is None:
            self.moe = MixtureOfExperts.from_dataset(self.dataset)

    def factory(self, scheme: str):
        """Return a zero-argument factory building a fresh scheduler."""
        if scheme == "isolated":
            return IsolatedScheduler
        if scheme == "pairwise":
            return PairwiseScheduler
        if scheme == "online_search":
            return OnlineSearchScheduler
        if scheme == "quasar":
            return lambda: make_quasar_scheduler(dataset=self.dataset)
        if scheme == "ours":
            return lambda: make_moe_scheduler(moe=self.moe)
        if scheme == "oracle":
            return make_oracle_scheduler
        if scheme == "unified_ann":
            return lambda: make_unified_scheduler("ann", dataset=self.dataset)
        if scheme in ("unified_power_law", "unified_exponential",
                      "unified_napierian_log"):
            family = scheme.replace("unified_", "")
            return lambda: make_unified_scheduler(family)
        raise KeyError(f"unknown scheduling scheme {scheme!r}")


@dataclass
class ScenarioResult:
    """Aggregated metrics of one scheme on one scenario."""

    scheme: str
    scenario: str
    stp_geomean: float
    stp_min: float
    stp_max: float
    antt_reduction_mean: float
    makespan_mean_min: float
    utilization_mean_percent: float


def _simulate(factory, jobs: list[Job], time_step_min: float,
              seed: int) -> ScheduleEvaluation:
    simulator = ClusterSimulator(paper_cluster(), factory(),
                                 time_step_min=time_step_min, seed=seed)
    result = simulator.run(jobs)
    return evaluate_schedule(result, jobs)


def run_scenarios(schemes, scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3,
                  seed: int = 11, time_step_min: float = 0.5,
                  suite: SchedulerSuite | None = None) -> list[ScenarioResult]:
    """Run the full scenario × mix × scheme grid and aggregate per scenario.

    Parameters
    ----------
    schemes:
        Scheme names understood by :meth:`SchedulerSuite.factory`.
    scenarios:
        Table 3 scenario labels to evaluate.
    n_mixes:
        Random mixes per scenario (the paper uses ~100; the default keeps
        the grid laptop-sized and can be raised for higher fidelity).
    seed:
        Seed for mix generation and the simulators.
    suite:
        Shared scheduler suite; a fresh one is trained when omitted.
    """
    suite = suite or SchedulerSuite()
    results: list[ScenarioResult] = []
    for scenario in scenarios:
        mixes = make_scenario_mixes(scenario, n_mixes=n_mixes, seed=seed)
        for scheme in schemes:
            factory = suite.factory(scheme)
            evaluations = [
                _simulate(factory, mix, time_step_min, seed) for mix in mixes
            ]
            results.append(ScenarioResult(
                scheme=scheme,
                scenario=scenario,
                stp_geomean=geometric_mean([e.stp for e in evaluations]),
                stp_min=min(e.stp for e in evaluations),
                stp_max=max(e.stp for e in evaluations),
                antt_reduction_mean=float(np.mean(
                    [e.antt_reduction_percent for e in evaluations])),
                makespan_mean_min=float(np.mean(
                    [e.makespan_min for e in evaluations])),
                utilization_mean_percent=float(np.mean(
                    [e.mean_utilization_percent for e in evaluations])),
            ))
    return results


def overall_geomean(results: list[ScenarioResult], scheme: str,
                    metric: str = "stp_geomean") -> float:
    """Geometric mean of a metric across scenarios for one scheme."""
    values = [getattr(r, metric) for r in results if r.scheme == scheme]
    if not values:
        raise KeyError(f"no results recorded for scheme {scheme!r}")
    if metric == "antt_reduction_mean":
        return float(np.mean(values))
    return geometric_mean(values)
