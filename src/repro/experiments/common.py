"""Shared infrastructure for the scheduling experiments.

The comparative experiments (Figures 6–10) all follow the same recipe: for
each runtime scenario of Table 3, draw a number of random application
mixes, simulate every scheduling scheme on each mix, and aggregate STP
(geometric mean, as in Section 5.2) and ANTT reduction.  This module
provides that recipe once so the per-figure drivers stay small.

Because every (scenario, scheme, mix) cell is an independent simulation,
:func:`run_scenarios` can fan the grid out over worker processes
(``workers=N``).  Workers share the one trained predictor suite — the
training dataset plus its models — by pickling it once into each worker,
mirroring the paper's one-off offline training cost.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import paper_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.core.moe import MixtureOfExperts
from repro.core.training import TrainingDataset, collect_training_data
from repro.metrics.throughput import ScheduleEvaluation, evaluate_schedule
from repro.ml.metrics import geometric_mean
from repro.scheduling import (
    IsolatedScheduler,
    OnlineSearchScheduler,
    PairwiseScheduler,
    make_moe_scheduler,
    make_oracle_scheduler,
    make_quasar_scheduler,
    make_unified_scheduler,
)
from repro.workloads.mixes import Job, make_scenario_mixes

__all__ = ["SchedulerSuite", "ScenarioResult", "run_scenarios", "DEFAULT_SCENARIOS"]

#: Scenario labels used by default (all of Table 3).
DEFAULT_SCENARIOS: tuple[str, ...] = ("L1", "L2", "L3", "L4", "L5",
                                      "L6", "L7", "L8", "L9", "L10")


@dataclass
class SchedulerSuite:
    """Lazily constructed scheduler factories sharing one trained predictor.

    Training the mixture of experts and the comparison models once and
    sharing them across every simulated mix mirrors the paper's one-off
    offline training cost (Section 3.3) and keeps the experiment grid fast.
    """

    dataset: TrainingDataset = field(default_factory=collect_training_data)
    moe: MixtureOfExperts | None = None

    def __post_init__(self) -> None:
        if self.moe is None:
            self.moe = MixtureOfExperts.from_dataset(self.dataset)

    def factory(self, scheme: str):
        """Return a zero-argument factory building a fresh scheduler."""
        if scheme == "isolated":
            return IsolatedScheduler
        if scheme == "pairwise":
            return PairwiseScheduler
        if scheme == "online_search":
            return OnlineSearchScheduler
        if scheme == "quasar":
            return lambda: make_quasar_scheduler(dataset=self.dataset)
        if scheme == "ours":
            return lambda: make_moe_scheduler(moe=self.moe)
        if scheme == "oracle":
            return make_oracle_scheduler
        if scheme == "unified_ann":
            return lambda: make_unified_scheduler("ann", dataset=self.dataset)
        if scheme in ("unified_power_law", "unified_exponential",
                      "unified_napierian_log"):
            family = scheme.replace("unified_", "")
            return lambda: make_unified_scheduler(family)
        raise KeyError(f"unknown scheduling scheme {scheme!r}")


@dataclass
class ScenarioResult:
    """Aggregated metrics of one scheme on one scenario."""

    scheme: str
    scenario: str
    stp_geomean: float
    stp_min: float
    stp_max: float
    antt_reduction_mean: float
    makespan_mean_min: float
    utilization_mean_percent: float


def _simulate(factory, jobs: list[Job], time_step_min: float,
              seed: int, engine: str = "event") -> ScheduleEvaluation:
    simulator = ClusterSimulator(paper_cluster(), factory(),
                                 time_step_min=time_step_min, seed=seed,
                                 step_mode=engine)
    result = simulator.run(jobs)
    return evaluate_schedule(result, jobs)


#: Per-process scheduler suite rebuilt once per worker (see _init_worker).
_WORKER_SUITE: SchedulerSuite | None = None


def _init_worker(suite_blob: bytes) -> None:
    """Process-pool initialiser: rebuild the shared suite in this worker.

    The parent pickles the suite — its training dataset plus the trained
    mixture of experts — once; unpickling here gives every worker the
    exact predictors of the sequential path, including any customised
    models the caller installed on the suite.
    """
    global _WORKER_SUITE
    _WORKER_SUITE = pickle.loads(suite_blob)


def _run_cell(task: tuple) -> tuple[int, ScheduleEvaluation]:
    """Simulate one (scenario, scheme, mix) grid cell in a worker."""
    index, scheme, jobs, time_step_min, seed, engine = task
    factory = _WORKER_SUITE.factory(scheme)
    return index, _simulate(factory, jobs, time_step_min, seed, engine)


def run_scenarios(schemes, scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3,
                  seed: int = 11, time_step_min: float = 0.5,
                  suite: SchedulerSuite | None = None,
                  engine: str = "event",
                  workers: int = 1) -> list[ScenarioResult]:
    """Run the full scenario × mix × scheme grid and aggregate per scenario.

    Parameters
    ----------
    schemes:
        Scheme names understood by :meth:`SchedulerSuite.factory`.
    scenarios:
        Table 3 scenario labels to evaluate.
    n_mixes:
        Random mixes per scenario (the paper uses ~100; the default keeps
        the grid laptop-sized and can be raised for higher fidelity).
    seed:
        Seed for mix generation and the simulators.
    suite:
        Shared scheduler suite; a fresh one is trained when omitted.
    engine:
        Simulator step mode, ``"event"`` (default) or ``"fixed"``; both
        produce the same trajectories, the event engine just skips the
        steps at which nothing can change.
    workers:
        Number of worker processes for the grid.  ``1`` (default) runs
        in-process; larger values fan the independent grid cells out over
        a :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are
        identical regardless of the worker count.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    suite = suite or SchedulerSuite()

    cells: list[tuple] = []   # (index, scheme, jobs, time_step, seed, engine)
    layout: list[tuple[str, str]] = []   # (scenario, scheme) per result row
    per_row: dict[int, list[int]] = {}   # result row -> cell indices
    for scenario in scenarios:
        mixes = make_scenario_mixes(scenario, n_mixes=n_mixes, seed=seed)
        for scheme in schemes:
            row = len(layout)
            layout.append((scenario, scheme))
            per_row[row] = []
            for mix in mixes:
                per_row[row].append(len(cells))
                cells.append((len(cells), scheme, mix, time_step_min, seed,
                              engine))

    evaluations: dict[int, ScheduleEvaluation] = {}
    if workers == 1:
        for cell in cells:
            index, evaluation = _run_cell_local(suite, cell)
            evaluations[index] = evaluation
    else:
        blob = pickle.dumps(suite)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_init_worker,
                                 initargs=(blob,)) as pool:
            for index, evaluation in pool.map(_run_cell, cells):
                evaluations[index] = evaluation

    results: list[ScenarioResult] = []
    for row, (scenario, scheme) in enumerate(layout):
        row_evals = [evaluations[i] for i in per_row[row]]
        results.append(ScenarioResult(
            scheme=scheme,
            scenario=scenario,
            stp_geomean=geometric_mean([e.stp for e in row_evals]),
            stp_min=min(e.stp for e in row_evals),
            stp_max=max(e.stp for e in row_evals),
            antt_reduction_mean=float(np.mean(
                [e.antt_reduction_percent for e in row_evals])),
            makespan_mean_min=float(np.mean(
                [e.makespan_min for e in row_evals])),
            utilization_mean_percent=float(np.mean(
                [e.mean_utilization_percent for e in row_evals])),
        ))
    return results


def _run_cell_local(suite: SchedulerSuite,
                    task: tuple) -> tuple[int, ScheduleEvaluation]:
    """Simulate one grid cell in-process (the ``workers=1`` path)."""
    index, scheme, jobs, time_step_min, seed, engine = task
    return index, _simulate(suite.factory(scheme), jobs, time_step_min, seed,
                            engine)


def overall_geomean(results: list[ScenarioResult], scheme: str,
                    metric: str = "stp_geomean") -> float:
    """Geometric mean of a metric across scenarios for one scheme."""
    values = [getattr(r, metric) for r in results if r.scheme == scheme]
    if not values:
        raise KeyError(f"no results recorded for scheme {scheme!r}")
    if metric == "antt_reduction_mean":
        return float(np.mean(values))
    return geometric_mean(values)
