"""Shared infrastructure for the scheduling experiments.

The comparative experiments (Figures 6–10) all follow the same recipe: for
each scenario, draw a number of application mixes, simulate every
scheduling scheme on each mix, and aggregate STP (geometric mean, as in
Section 5.2) and ANTT reduction.  This module provides that recipe once so
the per-figure drivers stay small.

Scenarios are declarative (:mod:`repro.scenarios`): an entry of
``scenarios`` may be a registry name (``"L1"``..``"L10"``, the seed
Table-3 batches, or an open-arrival/heterogeneous scenario), a path to a
spec JSON document, or a :class:`~repro.scenarios.spec.ScenarioSpec`
object.  One seeded generator per scenario drives both mix generation and
the arrival process, so a (scenario, seed) pair pins the whole workload.

Because every (scenario, scheme, mix) cell is an independent simulation,
:func:`run_scenarios` can fan the grid out over worker processes
(``workers=N``).  Workers share the one trained predictor suite — the
training dataset plus its models — by pickling it once into each worker,
mirroring the paper's one-off offline training cost.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.cluster.simulator import ClusterSimulator
from repro.core.moe import MixtureOfExperts
from repro.core.training import TrainingDataset, collect_training_data
from repro.metrics.throughput import ScheduleEvaluation, evaluate_schedule
from repro.ml.metrics import geometric_mean
from repro.scenarios.registry import load_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scheduling import (
    IsolatedScheduler,
    OnlineSearchScheduler,
    PairwiseScheduler,
    make_moe_scheduler,
    make_oracle_scheduler,
    make_quasar_scheduler,
    make_unified_scheduler,
)
from repro.spark.driver import DynamicAllocationPolicy
from repro.workloads.mixes import Job

__all__ = ["SchedulerSuite", "ScenarioResult", "run_scenarios",
           "DEFAULT_SCENARIOS", "KNOWN_SCHEMES", "HorizonTruncationError"]

#: Scenario labels used by default (all of Table 3).
DEFAULT_SCENARIOS: tuple[str, ...] = ("L1", "L2", "L3", "L4", "L5",
                                      "L6", "L7", "L8", "L9", "L10")

#: Every scheme name understood by :meth:`SchedulerSuite.factory`.
KNOWN_SCHEMES: tuple[str, ...] = (
    "isolated", "pairwise", "online_search", "quasar", "ours", "oracle",
    "unified_ann", "unified_power_law", "unified_exponential",
    "unified_napierian_log",
)

#: Schemes whose schedulers require offline-trained artefacts, and which
#: artefact each needs ("dataset" or "moe").
_TRAINED_ARTEFACTS: dict[str, str] = {
    "quasar": "dataset",
    "ours": "moe",
    "unified_ann": "dataset",
}


class HorizonTruncationError(RuntimeError):
    """A scenario's horizon cut the workload short, so the headline metrics
    (STP/ANTT over *completed* turnarounds) are undefined for the run."""


class SchedulerSuite:
    """Lazily trained scheduler factories sharing one predictor suite.

    Training the mixture of experts and the comparison models once and
    sharing them across every simulated mix mirrors the paper's one-off
    offline training cost (Section 3.3) and keeps the experiment grid fast.
    Training is *lazy*: a suite used only for prediction-free schemes
    (isolated, pairwise, oracle, online search) never trains at all, and
    :func:`repro.experiments.suite_cache.load_or_train_suite` can satisfy
    the trained artefacts from a disk cache instead.
    """

    def __init__(self, dataset: TrainingDataset | None = None,
                 moe: MixtureOfExperts | None = None) -> None:
        self._dataset = dataset
        self._moe = moe

    @property
    def dataset(self) -> TrainingDataset:
        """The offline training dataset, collected on first use."""
        if self._dataset is None:
            self._dataset = collect_training_data()
        return self._dataset

    @property
    def moe(self) -> MixtureOfExperts:
        """The trained mixture of experts, fitted on first use."""
        if self._moe is None:
            self._moe = MixtureOfExperts.from_dataset(self.dataset)
        return self._moe

    def is_trained(self) -> bool:
        """Whether both trained artefacts are materialised."""
        return self._dataset is not None and self._moe is not None

    @staticmethod
    def needs_training(schemes) -> bool:
        """Whether any of the given schemes requires trained artefacts."""
        return any(scheme in _TRAINED_ARTEFACTS for scheme in schemes)

    def ensure_trained(self, schemes=None) -> None:
        """Materialise the trained artefacts the given schemes need.

        With ``schemes=None`` everything is trained.  Called before the
        suite is pickled into worker processes, so workers receive trained
        models rather than each re-training their own.
        """
        if schemes is None:
            self.moe
            return
        for scheme in schemes:
            artefact = _TRAINED_ARTEFACTS.get(scheme)
            if artefact == "dataset":
                self.dataset
            elif artefact == "moe":
                self.moe

    def factory(self, scheme: str,
                allocation_policy: DynamicAllocationPolicy | None = None):
        """Return a zero-argument factory building a fresh scheduler.

        ``allocation_policy`` overrides the schedulers' Spark-like dynamic
        allocation; the scenario runner derives it from the actual topology
        so executor targets track the cluster size instead of assuming the
        paper's 40 nodes.
        """
        kwargs = ({} if allocation_policy is None
                  else {"allocation_policy": allocation_policy})
        if scheme == "isolated":
            return lambda: IsolatedScheduler(**kwargs)
        if scheme == "pairwise":
            return lambda: PairwiseScheduler(**kwargs)
        if scheme == "online_search":
            return lambda: OnlineSearchScheduler(**kwargs)
        if scheme == "quasar":
            return lambda: make_quasar_scheduler(dataset=self.dataset, **kwargs)
        if scheme == "ours":
            return lambda: make_moe_scheduler(moe=self.moe, **kwargs)
        if scheme == "oracle":
            return lambda: make_oracle_scheduler(**kwargs)
        if scheme == "unified_ann":
            return lambda: make_unified_scheduler("ann", dataset=self.dataset,
                                                  **kwargs)
        if scheme in ("unified_power_law", "unified_exponential",
                      "unified_napierian_log"):
            family = scheme.replace("unified_", "")
            return lambda: make_unified_scheduler(family, **kwargs)
        raise KeyError(f"unknown scheduling scheme {scheme!r}")


@dataclass
class ScenarioResult:
    """Aggregated metrics of one scheme on one scenario."""

    scheme: str
    scenario: str
    stp_geomean: float
    stp_min: float
    stp_max: float
    antt_reduction_mean: float
    makespan_mean_min: float
    utilization_mean_percent: float


def _simulate(suite: "SchedulerSuite", scheme: str, jobs: list[Job],
              time_step_min: float, seed: int, engine: str,
              spec: ScenarioSpec) -> ScheduleEvaluation:
    """Simulate one mix of one scenario under one scheme.

    The cluster is built fresh from the scenario's topology, and the
    dynamic-allocation executor cap follows the cluster size (for the
    paper's 40-node platform this matches the seed's fixed default
    exactly).
    """
    cluster = spec.build_cluster()
    policy = DynamicAllocationPolicy(max_executors=len(cluster))
    factory = suite.factory(scheme, allocation_policy=policy)
    simulator = ClusterSimulator(cluster, factory(),
                                 time_step_min=time_step_min, seed=seed,
                                 step_mode=engine,
                                 max_time_min=spec.max_time_min)
    result = simulator.run(jobs)
    if not result.all_finished():
        unfinished = sum(1 for app in result.apps.values()
                         if app.finish_time is None)
        raise HorizonTruncationError(
            f"scenario {spec.name!r} ({scheme}): horizon "
            f"max_time_min={spec.max_time_min:g} truncated the workload — "
            f"{len(result.unsubmitted_jobs)} job(s) never arrived, "
            f"{unfinished} app(s) unfinished; raise the spec's max_time_min")
    return evaluate_schedule(result, jobs, policy)


#: Per-process scheduler suite rebuilt once per worker (see _init_worker).
_WORKER_SUITE: SchedulerSuite | None = None


def _init_worker(suite_blob: bytes) -> None:
    """Process-pool initialiser: rebuild the shared suite in this worker.

    The parent pickles the suite — its training dataset plus the trained
    mixture of experts — once; unpickling here gives every worker the
    exact predictors of the sequential path, including any customised
    models the caller installed on the suite.
    """
    global _WORKER_SUITE
    _WORKER_SUITE = pickle.loads(suite_blob)


def _run_cell(task: tuple) -> tuple[int, ScheduleEvaluation]:
    """Simulate one (scenario, scheme, mix) grid cell in a worker."""
    index, scheme, jobs, time_step_min, seed, engine, spec = task
    return index, _simulate(_WORKER_SUITE, scheme, jobs, time_step_min, seed,
                            engine, spec)


def run_scenarios(schemes, scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3,
                  seed: int = 11, time_step_min: float = 0.5,
                  suite: SchedulerSuite | None = None,
                  engine: str = "event",
                  workers: int = 1) -> list[ScenarioResult]:
    """Run the full scenario × mix × scheme grid and aggregate per scenario.

    Parameters
    ----------
    schemes:
        Scheme names understood by :meth:`SchedulerSuite.factory`.
    scenarios:
        Scenario identifiers: registry names (``"L1"``..``"L10"``, demo
        scenarios), paths to spec JSON documents, or
        :class:`~repro.scenarios.spec.ScenarioSpec` objects.
    n_mixes:
        Random mixes per scenario (the paper uses ~100; the default keeps
        the grid laptop-sized and can be raised for higher fidelity).
    seed:
        Seed of the per-scenario generator driving mix generation and
        arrival processes, and of the simulators.
    suite:
        Shared scheduler suite; a fresh one is created when omitted and
        trained lazily, only if a scheme requires trained artefacts.
    engine:
        Simulator step mode, ``"event"`` (default) or ``"fixed"``; both
        produce the same trajectories, the event engine just skips the
        steps at which nothing can change.
    workers:
        Number of worker processes for the grid.  ``1`` (default) runs
        in-process; larger values fan the independent grid cells out over
        a :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are
        identical regardless of the worker count.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    suite = suite or SchedulerSuite()
    specs = [load_scenario(entry) for entry in scenarios]

    cells: list[tuple] = []   # (index, scheme, jobs, step, seed, engine, spec)
    layout: list[tuple[str, str]] = []   # (scenario, scheme) per result row
    per_row: dict[int, list[int]] = {}   # result row -> cell indices
    for spec in specs:
        mixes = spec.make_mixes(n_mixes=n_mixes, seed=seed)
        for scheme in schemes:
            row = len(layout)
            layout.append((spec.name, scheme))
            per_row[row] = []
            for mix in mixes:
                per_row[row].append(len(cells))
                cells.append((len(cells), scheme, mix, time_step_min, seed,
                              engine, spec))

    evaluations: dict[int, ScheduleEvaluation] = {}
    if workers == 1:
        for cell in cells:
            index, evaluation = _run_cell_local(suite, cell)
            evaluations[index] = evaluation
    else:
        suite.ensure_trained(schemes)
        blob = pickle.dumps(suite)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_init_worker,
                                 initargs=(blob,)) as pool:
            for index, evaluation in pool.map(_run_cell, cells):
                evaluations[index] = evaluation

    results: list[ScenarioResult] = []
    for row, (scenario, scheme) in enumerate(layout):
        row_evals = [evaluations[i] for i in per_row[row]]
        results.append(ScenarioResult(
            scheme=scheme,
            scenario=scenario,
            stp_geomean=geometric_mean([e.stp for e in row_evals]),
            stp_min=min(e.stp for e in row_evals),
            stp_max=max(e.stp for e in row_evals),
            antt_reduction_mean=float(np.mean(
                [e.antt_reduction_percent for e in row_evals])),
            makespan_mean_min=float(np.mean(
                [e.makespan_min for e in row_evals])),
            utilization_mean_percent=float(np.mean(
                [e.mean_utilization_percent for e in row_evals])),
        ))
    return results


def _run_cell_local(suite: SchedulerSuite,
                    task: tuple) -> tuple[int, ScheduleEvaluation]:
    """Simulate one grid cell in-process (the ``workers=1`` path)."""
    index, scheme, jobs, time_step_min, seed, engine, spec = task
    return index, _simulate(suite, scheme, jobs, time_step_min, seed, engine,
                            spec)


def overall_geomean(results: list[ScenarioResult], scheme: str,
                    metric: str = "stp_geomean") -> float:
    """Geometric mean of a metric across scenarios for one scheme."""
    values = [getattr(r, metric) for r in results if r.scheme == scheme]
    if not values:
        raise KeyError(f"no results recorded for scheme {scheme!r}")
    if metric == "antt_reduction_mean":
        return float(np.mean(values))
    return geometric_mean(values)
