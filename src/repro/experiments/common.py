"""Legacy shared infrastructure for the scheduling experiments.

.. deprecated::
    The experiment engine moved to :mod:`repro.api` — build an
    :class:`~repro.api.ExperimentPlan` and execute it through a
    :class:`~repro.api.Session` (``session.run(plan)`` for the old
    barrier semantics, ``session.stream(plan)`` for typed per-cell
    results as they complete).  Scheme names are resolved through the
    plugin registry (:mod:`repro.scheduling.registry`), so third-party
    policies register themselves instead of editing this module.

This module remains as a compatibility shim: :func:`run_scenarios`
reproduces its historical behaviour — including bit-for-bit identical
:class:`~repro.api.ScenarioResult` aggregates — on top of the new
session layer, and the old names (:class:`SchedulerSuite`,
:class:`ScenarioResult`, :class:`HorizonTruncationError`,
``DEFAULT_SCENARIOS``, ``overall_geomean``) re-export from
:mod:`repro.api`.  ``KNOWN_SCHEMES`` is now a live view of the scheme
registry rather than a hardcoded tuple.
"""

from __future__ import annotations

import warnings

from repro.api.plan import DEFAULT_SCENARIOS, ExperimentPlan
from repro.api.results import ScenarioResult, overall_geomean
from repro.api.session import HorizonTruncationError, Session
from repro.api.suite import SchedulerSuite
from repro.scheduling.registry import scheme_names

__all__ = ["SchedulerSuite", "ScenarioResult", "run_scenarios",
           "DEFAULT_SCENARIOS", "HorizonTruncationError", "overall_geomean"]


def __getattr__(name: str):
    # KNOWN_SCHEMES used to be a hardcoded tuple; keep it importable as a
    # live snapshot of the plugin registry so late registrations show up.
    if name == "KNOWN_SCHEMES":
        return scheme_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_scenarios(schemes, scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3,
                  seed: int = 11, time_step_min: float = 0.5,
                  suite: SchedulerSuite | None = None,
                  engine: str = "event",
                  workers: int = 1) -> list[ScenarioResult]:
    """Run the full scenario × mix × scheme grid and aggregate per scenario.

    .. deprecated::
        Thin wrapper over :class:`repro.api.Session`; prefer::

            plan = ExperimentPlan(schemes=schemes, scenarios=scenarios, ...)
            with Session() as session:
                results = session.run(plan)

    Scheme and scenario names are validated eagerly — an unknown scheme
    raises :class:`repro.scheduling.registry.UnknownSchemeError` (listing
    the registered names) before any training or simulation starts, and
    duplicate scheme or scenario entries, which the pre-API runner
    silently turned into repeated rows, are now rejected with
    :class:`~repro.api.PlanError`.  For every input that passes
    validation the output is unchanged: the same :class:`ScenarioResult`
    rows, bit-for-bit, in scenario-major order.
    """
    warnings.warn(
        "run_scenarios() is deprecated; build a repro.api.ExperimentPlan "
        "and execute it with repro.api.Session.run() or .stream()",
        DeprecationWarning, stacklevel=2)
    plan = ExperimentPlan(schemes=tuple(schemes), scenarios=scenarios,
                          n_mixes=n_mixes, seed=seed,
                          time_step_min=time_step_min, engine=engine,
                          workers=workers)
    with Session(suite=suite, use_cache=False) as session:
        return session.run(plan)
