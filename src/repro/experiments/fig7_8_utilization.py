"""Figures 7 and 8: server utilisation and turnaround for the Table 4 mix.

The paper schedules the fixed 30-application mix of Table 4 (scenario L10)
under Pairwise, Quasar and its own approach, then shows the per-node CPU
utilisation over time (Figure 7) and the resulting STP and wall-clock
turnaround time (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import paper_cluster
from repro.cluster.simulator import ClusterSimulator
from repro.api import SchedulerSuite
from repro.metrics.throughput import StreamingScheduleMetrics
from repro.metrics.utilization import StreamingUtilizationHeatmap
from repro.workloads.mixes import make_table4_jobs

__all__ = ["UtilizationResult", "run", "format_table"]

#: Schemes compared in Figures 7 and 8.
SCHEMES: tuple[str, ...] = ("pairwise", "quasar", "ours")


@dataclass(frozen=True)
class UtilizationResult:
    """Utilisation heat-map data plus the Figure 8 summary for one scheme."""

    scheme: str
    stp: float
    antt_reduction_percent: float
    turnaround_min: float
    mean_utilization_percent: float
    bin_times_min: tuple[float, ...]
    heatmap: np.ndarray  # shape (n_nodes, n_bins), percent


def run(suite: SchedulerSuite | None = None, schemes=SCHEMES,
        n_bins: int = 48, seed: int = 11,
        time_step_min: float = 0.5,
        engine: str = "event") -> list[UtilizationResult]:
    """Schedule the Table 4 mix under each scheme and collect utilisation.

    Both the headline metrics and the heat map are accumulated by
    streaming event-bus subscribers while the simulation runs — no
    post-hoc trace matrices; the full per-step traces are not even
    recorded (``record_utilization=False``).
    """
    suite = suite or SchedulerSuite()
    jobs = make_table4_jobs()
    results = []
    for scheme in schemes:
        simulator = ClusterSimulator(paper_cluster(), suite.factory(scheme)(),
                                     time_step_min=time_step_min, seed=seed,
                                     step_mode=engine,
                                     record_utilization=False)
        metrics = StreamingScheduleMetrics(jobs).attach(simulator.events)
        heatmap = StreamingUtilizationHeatmap(n_bins=n_bins).attach(
            simulator.events)
        sim_result = simulator.run(jobs)
        evaluation = metrics.evaluate(sim_result)
        times, matrix = heatmap.matrix()
        results.append(UtilizationResult(
            scheme=scheme,
            stp=evaluation.stp,
            antt_reduction_percent=evaluation.antt_reduction_percent,
            turnaround_min=evaluation.makespan_min,
            mean_utilization_percent=evaluation.mean_utilization_percent,
            bin_times_min=tuple(float(t) for t in times),
            heatmap=matrix,
        ))
    return results


def format_table(results: list[UtilizationResult]) -> str:
    """Render the Figure 8 bars and a coarse Figure 7 heat map in text."""
    lines = ["Figure 8 — STP and turnaround for the Table 4 mix:"]
    lines.append(f"{'scheme':>10s} {'STP':>8s} {'turnaround (min)':>18s} "
                 f"{'mean util %':>12s}")
    for result in results:
        lines.append(f"{result.scheme:>10s} {result.stp:8.2f} "
                     f"{result.turnaround_min:18.1f} "
                     f"{result.mean_utilization_percent:12.1f}")
    lines.append("")
    lines.append("Figure 7 — cluster-average utilisation over time (percent per time bin):")
    for result in results:
        profile = result.heatmap.mean(axis=0)
        compact = " ".join(f"{v:3.0f}" for v in profile[:24])
        lines.append(f"{result.scheme:>10s} {compact}")
    return "\n".join(lines)
