"""Figure 14: slowdown of Spark benchmarks when co-located by our scheme.

The paper launches each of the 16 HiBench/BigDataBench benchmarks on a
single host, then lets its scheme co-locate one additional application in
the spare memory, and measures the slowdown of the target relative to
isolated execution.  The reported slowdowns stay below ~25 % with a median
well under 10 %.

Each (target, co-runner) pair is simulated twice on a one-node cluster:
once with the target alone and once with both applications scheduled by
the memory-aware dispatcher; the slowdown is the relative increase of the
target's execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import ClusterSimulator
from repro.api import SchedulerSuite
from repro.metrics.slowdown import slowdown_percent
from repro.workloads.mixes import Job
from repro.workloads.suites import ALL_BENCHMARKS, TRAINING_BENCHMARKS

__all__ = ["InterferenceDistribution", "run", "format_table"]


@dataclass(frozen=True)
class InterferenceDistribution:
    """Slowdown distribution of one target benchmark across co-runners."""

    target: str
    slowdowns_percent: tuple[float, ...]

    @property
    def median(self) -> float:
        """Median slowdown in percent."""
        return float(np.median(self.slowdowns_percent))

    @property
    def maximum(self) -> float:
        """Worst-case slowdown in percent."""
        return float(np.max(self.slowdowns_percent))


def _single_node_runtime(suite: SchedulerSuite, jobs: list[Job], target: str,
                         seed: int, engine: str = "event") -> float:
    cluster = Cluster.homogeneous(1)
    simulator = ClusterSimulator(cluster, suite.factory("ours")(),
                                 time_step_min=0.25, seed=seed,
                                 step_mode=engine)
    result = simulator.run(jobs)
    return result.apps[target].execution_min()


def run(targets=None, co_runners_per_target: int = 8, input_gb: float = 30.0,
        seed: int = 7, suite: SchedulerSuite | None = None,
        engine: str = "event") -> list[InterferenceDistribution]:
    """Measure co-location slowdowns for each target benchmark.

    ``co_runners_per_target`` bounds how many distinct co-runners each
    target is paired with (the paper pairs each target with all 43 other
    benchmarks; sampling keeps the default run laptop-sized).
    """
    suite = suite or SchedulerSuite()
    rng = np.random.default_rng(seed)
    targets = list(targets or [spec.name for spec in TRAINING_BENCHMARKS])
    all_names = [spec.name for spec in ALL_BENCHMARKS]
    distributions = []
    for target in targets:
        others = [name for name in all_names if name != target]
        chosen = rng.choice(others, size=min(co_runners_per_target, len(others)),
                            replace=False)
        isolated = _single_node_runtime(
            suite, [Job(target, input_gb)], target, seed, engine)
        slowdowns = []
        for co_runner in chosen:
            colocated = _single_node_runtime(
                suite, [Job(target, input_gb), Job(str(co_runner), input_gb)],
                target, seed, engine)
            slowdowns.append(max(slowdown_percent(isolated, colocated), 0.0))
        distributions.append(InterferenceDistribution(
            target=target,
            slowdowns_percent=tuple(float(s) for s in slowdowns),
        ))
    return distributions


def format_table(distributions: list[InterferenceDistribution]) -> str:
    """Render per-target slowdown summaries (median / max), like Figure 14."""
    lines = ["Figure 14 — co-location slowdown of the target benchmark:"]
    lines.append(f"{'target':>18s} {'median %':>9s} {'max %':>7s}")
    for dist in distributions:
        lines.append(f"{dist.target:>18s} {dist.median:9.1f} {dist.maximum:7.1f}")
    overall = np.concatenate([d.slowdowns_percent for d in distributions])
    lines.append(f"overall mean slowdown: {overall.mean():.1f}%  "
                 f"(95th percentile {np.percentile(overall, 95):.1f}%)")
    return "\n".join(lines)
