"""Figure 3: observed vs predicted memory footprints for Sort and PageRank.

The paper shows that HiBench Sort is captured by the exponential family
(``m = 5.768, b = 4.479``) and PageRank by the Napierian-log family
(``m = 16.333, b = 1.79``).  This driver profiles both applications,
predicts their memory function through the trained mixture of experts and
reports the observed and predicted footprints over a range of input sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moe import MixtureOfExperts
from repro.profiling.profiler import Profiler
from repro.workloads.suites import benchmark_by_name

__all__ = ["MemoryCurve", "run", "format_table"]

#: The two applications shown in Figure 3.
FIGURE3_BENCHMARKS = ("HB.Sort", "HB.PageRank")


@dataclass(frozen=True)
class MemoryCurve:
    """Observed and predicted footprints of one benchmark."""

    benchmark: str
    family: str
    coefficients: tuple[float, float]
    sizes_gb: tuple[float, ...]
    observed_gb: tuple[float, ...]
    predicted_gb: tuple[float, ...]

    def max_relative_error(self) -> float:
        """Largest relative prediction error across the profiled sizes."""
        observed = np.asarray(self.observed_gb)
        predicted = np.asarray(self.predicted_gb)
        return float(np.max(np.abs(predicted - observed) / observed))


def run(moe: MixtureOfExperts | None = None, seed: int = 0,
        n_points: int = 10) -> list[MemoryCurve]:
    """Reproduce the two panels of Figure 3."""
    moe = moe or MixtureOfExperts.train(seed=seed)
    profiler = Profiler(seed=seed)
    rng = np.random.default_rng(seed)
    sizes = np.logspace(np.log10(0.5), np.log10(60.0), n_points)
    curves = []
    for name in FIGURE3_BENCHMARKS:
        spec = benchmark_by_name(name)
        report = profiler.profile(name, spec, input_gb=1000.0)
        prediction = moe.for_target(spec).predict_from_report(report)
        observed = [spec.observed_footprint_gb(s, rng=rng, noise=0.02)
                    for s in sizes]
        predicted = [prediction.footprint_gb(s) for s in sizes]
        curves.append(MemoryCurve(
            benchmark=name,
            family=prediction.family,
            coefficients=prediction.function.coefficients,
            sizes_gb=tuple(float(s) for s in sizes),
            observed_gb=tuple(float(o) for o in observed),
            predicted_gb=tuple(float(p) for p in predicted),
        ))
    return curves


def format_table(curves: list[MemoryCurve]) -> str:
    """Render the observed/predicted series as a plain-text table."""
    lines = []
    for curve in curves:
        m, b = curve.coefficients
        lines.append(f"{curve.benchmark}  family={curve.family}  "
                     f"m={m:.3f} b={b:.3f}")
        lines.append(f"{'input (GB)':>12s} {'observed (GB)':>14s} {'predicted (GB)':>15s}")
        for size, obs, pred in zip(curve.sizes_gb, curve.observed_gb,
                                   curve.predicted_gb):
            lines.append(f"{size:12.2f} {obs:14.2f} {pred:15.2f}")
        lines.append("")
    return "\n".join(lines)
