"""Figure 6: overall STP and ANTT of Pairwise, Quasar, our approach and Oracle.

This is the paper's headline comparison: normalized STP (Figure 6a) and
ANTT reduction (Figure 6b) for every runtime scenario of Table 3, with the
isolated one-by-one execution as the baseline.  The grid runs entirely
through :mod:`repro.api`: :func:`plan` builds the declarative grid and
:func:`run` executes it in a session.
"""

from __future__ import annotations

from repro.api import (
    DEFAULT_SCENARIOS,
    ExperimentPlan,
    ScenarioResult,
    SchedulerSuite,
    Session,
    overall_geomean,
)

__all__ = ["SCHEMES", "plan", "run", "format_table"]

#: The four schemes shown in Figure 6, plus the baseline for reference.
SCHEMES: tuple[str, ...] = ("pairwise", "quasar", "ours", "oracle")


def plan(scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3, seed: int = 11,
         include_isolated: bool = False, include_learned: bool = False,
         engine: str = "event", workers: int = 1) -> ExperimentPlan:
    """The declarative Figure 6 grid.

    ``include_learned`` adds the trained ``learned`` scheme (PR 8's
    policy-gradient checkpoint) as an extra column next to the paper's
    four; it is opt-in so the published Figure 6 stays byte-stable.
    """
    schemes = (SCHEMES
               + (("learned",) if include_learned else ())
               + (("isolated",) if include_isolated else ()))
    return ExperimentPlan(schemes=schemes, scenarios=scenarios,
                          n_mixes=n_mixes, seed=seed, engine=engine,
                          workers=workers)


def run(scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3, seed: int = 11,
        suite: SchedulerSuite | None = None,
        include_isolated: bool = False, include_learned: bool = False,
        engine: str = "event", workers: int = 1,
        session: Session | None = None) -> list[ScenarioResult]:
    """Reproduce Figure 6 over the requested scenarios.

    Pass an existing :class:`~repro.api.Session` to share its trained
    artefacts and worker pool; otherwise a throwaway session wraps the
    given ``suite`` (no disk cache involved, as before).
    """
    grid = plan(scenarios=scenarios, n_mixes=n_mixes, seed=seed,
                include_isolated=include_isolated,
                include_learned=include_learned, engine=engine,
                workers=workers)
    if session is not None:
        return session.run(grid)
    with Session(suite=suite, use_cache=False) as own_session:
        return own_session.run(grid)


def format_table(results: list[ScenarioResult]) -> str:
    """Render STP and ANTT-reduction rows per scenario, like Figure 6."""
    order = SCHEMES + ("learned", "isolated")
    schemes = sorted({r.scheme for r in results},
                     key=lambda s: (order.index(s) if s in order
                                    else len(order), s))
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    lines = ["Normalized STP (Figure 6a):"]
    header = f"{'scenario':>9s} " + " ".join(f"{s:>12s}" for s in schemes)
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.stp_geomean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:12.2f}")
        lines.append(" ".join(row))
    lines.append(" ".join(
        [f"{'geomean':>9s}"] + [f"{overall_geomean(results, s):12.2f}" for s in schemes]
    ))
    lines.append("")
    lines.append("ANTT reduction % (Figure 6b):")
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.antt_reduction_mean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:12.1f}")
        lines.append(" ".join(row))
    lines.append(" ".join(
        [f"{'mean':>9s}"]
        + [f"{overall_geomean(results, s, 'antt_reduction_mean'):12.1f}" for s in schemes]
    ))
    return "\n".join(lines)
