"""Figure 6: overall STP and ANTT of Pairwise, Quasar, our approach and Oracle.

This is the paper's headline comparison: normalized STP (Figure 6a) and
ANTT reduction (Figure 6b) for every runtime scenario of Table 3, with the
isolated one-by-one execution as the baseline.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCENARIOS,
    ScenarioResult,
    SchedulerSuite,
    overall_geomean,
    run_scenarios,
)

__all__ = ["SCHEMES", "run", "format_table"]

#: The four schemes shown in Figure 6, plus the baseline for reference.
SCHEMES: tuple[str, ...] = ("pairwise", "quasar", "ours", "oracle")


def run(scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3, seed: int = 11,
        suite: SchedulerSuite | None = None,
        include_isolated: bool = False,
        engine: str = "event", workers: int = 1) -> list[ScenarioResult]:
    """Reproduce Figure 6 over the requested scenarios."""
    schemes = SCHEMES + (("isolated",) if include_isolated else ())
    return run_scenarios(schemes, scenarios=scenarios, n_mixes=n_mixes,
                         seed=seed, suite=suite, engine=engine,
                         workers=workers)


def format_table(results: list[ScenarioResult]) -> str:
    """Render STP and ANTT-reduction rows per scenario, like Figure 6."""
    schemes = sorted({r.scheme for r in results},
                     key=lambda s: (SCHEMES + ("isolated",)).index(s))
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    lines = ["Normalized STP (Figure 6a):"]
    header = f"{'scenario':>9s} " + " ".join(f"{s:>12s}" for s in schemes)
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.stp_geomean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:12.2f}")
        lines.append(" ".join(row))
    lines.append(" ".join(
        [f"{'geomean':>9s}"] + [f"{overall_geomean(results, s):12.2f}" for s in schemes]
    ))
    lines.append("")
    lines.append("ANTT reduction % (Figure 6b):")
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.antt_reduction_mean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:12.1f}")
        lines.append(" ".join(row))
    lines.append(" ".join(
        [f"{'mean':>9s}"]
        + [f"{overall_geomean(results, s, 'antt_reduction_mean'):12.1f}" for s in schemes]
    ))
    return "\n".join(lines)
