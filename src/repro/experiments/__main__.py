"""``python -m repro.experiments`` — alias for the experiments CLI."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
