"""Figure 9: comparison against unified single-model approaches.

The unified baselines use one modelling technique for every application —
each of the three Table 1 families, plus a neural-network regressor — with
the same co-location policy as the paper's approach.  The mixture of
experts should match or beat all of them on STP and ANTT.
"""

from __future__ import annotations

from repro.api import (
    DEFAULT_SCENARIOS,
    ExperimentPlan,
    ScenarioResult,
    SchedulerSuite,
    Session,
)

__all__ = ["SCHEMES", "run", "format_table"]

#: The schemes of Figure 9.
SCHEMES: tuple[str, ...] = (
    "unified_power_law",
    "unified_exponential",
    "unified_napierian_log",
    "unified_ann",
    "ours",
)


def run(scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3, seed: int = 11,
        suite: SchedulerSuite | None = None, include_learned: bool = False,
        engine: str = "event", workers: int = 1,
        session: Session | None = None) -> list[ScenarioResult]:
    """Reproduce Figure 9 over the requested scenarios.

    ``include_learned`` appends the trained ``learned`` scheme as one
    more single-model baseline column (opt-in, like Figure 6's).
    """
    schemes = SCHEMES + (("learned",) if include_learned else ())
    plan = ExperimentPlan(schemes=schemes, scenarios=scenarios,
                          n_mixes=n_mixes, seed=seed, engine=engine,
                          workers=workers)
    if session is not None:
        return session.run(plan)
    with Session(suite=suite, use_cache=False) as own_session:
        return own_session.run(plan)


def format_table(results: list[ScenarioResult]) -> str:
    """Render STP / ANTT-reduction rows per scenario."""
    schemes = list(dict.fromkeys(r.scheme for r in results))
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    lines = []
    header = f"{'scenario':>9s} " + " ".join(f"{s:>22s}" for s in schemes)
    lines.append("Normalized STP (Figure 9a):")
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.stp_geomean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:22.2f}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("ANTT reduction % (Figure 9b):")
    lines.append(header)
    for scenario in scenarios:
        row = [f"{scenario:>9s}"]
        for scheme in schemes:
            value = next(r.antt_reduction_mean for r in results
                         if r.scheme == scheme and r.scenario == scenario)
            row.append(f"{value:22.1f}")
        lines.append(" ".join(row))
    return "\n".join(lines)
