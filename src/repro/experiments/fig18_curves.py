"""Figure 18: predicted vs measured memory curves for all training programs.

The paper plots, for each HiBench/BigDataBench benchmark, the measured
memory footprint against the footprint predicted by its calibrated memory
function over input sizes spanning several orders of magnitude, showing
that the per-family functions track the measurements closely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moe import MixtureOfExperts
from repro.profiling.profiler import Profiler
from repro.workloads.suites import TRAINING_BENCHMARKS

__all__ = ["BenchmarkCurve", "run", "format_table"]


@dataclass(frozen=True)
class BenchmarkCurve:
    """Measured and predicted footprint curve of one benchmark."""

    benchmark: str
    family: str
    sizes_gb: tuple[float, ...]
    measured_gb: tuple[float, ...]
    predicted_gb: tuple[float, ...]

    @property
    def mean_relative_error_percent(self) -> float:
        """Mean relative error of the predicted curve."""
        measured = np.asarray(self.measured_gb)
        predicted = np.asarray(self.predicted_gb)
        return float(np.mean(np.abs(predicted - measured) / measured) * 100.0)


def run(moe: MixtureOfExperts | None = None, seed: int = 5,
        n_points: int = 8) -> list[BenchmarkCurve]:
    """Reproduce the Figure 18 panels (one curve per training benchmark)."""
    moe = moe or MixtureOfExperts.train(seed=seed)
    profiler = Profiler(seed=seed)
    sizes = np.logspace(np.log10(0.5), np.log10(60.0), n_points)
    curves = []
    for spec in TRAINING_BENCHMARKS:
        report = profiler.profile(spec.name, spec, input_gb=280.0)
        prediction = moe.for_target(spec).predict_from_report(report)
        measured = [spec.true_footprint_gb(s) for s in sizes]
        predicted = [prediction.footprint_gb(s) for s in sizes]
        curves.append(BenchmarkCurve(
            benchmark=spec.name,
            family=prediction.family,
            sizes_gb=tuple(float(s) for s in sizes),
            measured_gb=tuple(float(v) for v in measured),
            predicted_gb=tuple(float(v) for v in predicted),
        ))
    return curves


def format_table(curves: list[BenchmarkCurve]) -> str:
    """Render one row per benchmark with its curve error."""
    lines = ["Figure 18 — predicted vs measured memory curves:"]
    lines.append(f"{'benchmark':>18s} {'family':>15s} {'mean rel. error %':>18s}")
    for curve in curves:
        lines.append(f"{curve.benchmark:>18s} {curve.family:>15s} "
                     f"{curve.mean_relative_error_percent:18.1f}")
    return "\n".join(lines)
