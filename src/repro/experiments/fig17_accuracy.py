"""Figure 17: predicted vs measured memory footprints (leave-one-out).

For every HiBench/BigDataBench benchmark the paper compares the memory
footprint predicted by the (leave-one-out trained) model against the value
measured for a ~280 GB input, reporting errors below 5 % for most programs
and up to ~12 % for the worst cases (HB.PageRank, BDB.PageRank, BDB.Sort).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moe import MixtureOfExperts
from repro.profiling.profiler import Profiler
from repro.spark.driver import DynamicAllocationPolicy
from repro.workloads.suites import TRAINING_BENCHMARKS

__all__ = ["AccuracyRow", "run", "format_table", "mean_absolute_error_percent"]


@dataclass(frozen=True)
class AccuracyRow:
    """Predicted and measured footprint of one benchmark."""

    benchmark: str
    family: str
    predicted_gb: float
    measured_gb: float

    @property
    def error_percent(self) -> float:
        """Signed relative prediction error in percent."""
        return 100.0 * (self.predicted_gb - self.measured_gb) / self.measured_gb


def run(moe: MixtureOfExperts | None = None, input_gb: float = 280.0,
        seed: int = 5) -> list[AccuracyRow]:
    """Reproduce Figure 17 with leave-one-out cross-validation.

    The footprint compared is that of one executor holding its share of the
    ~280 GB input under Spark's dynamic allocation, which is the quantity
    the runtime needs to size co-located executors.
    """
    moe = moe or MixtureOfExperts.train(seed=seed)
    profiler = Profiler(seed=seed)
    policy = DynamicAllocationPolicy()
    share_gb = policy.default_split_gb(input_gb)
    rows = []
    for spec in TRAINING_BENCHMARKS:
        report = profiler.profile(spec.name, spec, input_gb)
        prediction = moe.for_target(spec).predict_from_report(report)
        measured = spec.true_footprint_gb(share_gb)
        rows.append(AccuracyRow(
            benchmark=spec.name,
            family=prediction.family,
            predicted_gb=float(prediction.footprint_gb(share_gb)),
            measured_gb=float(measured),
        ))
    return rows


def mean_absolute_error_percent(rows: list[AccuracyRow]) -> float:
    """Mean absolute relative error across benchmarks (the paper's ~5 %)."""
    return float(np.mean([abs(row.error_percent) for row in rows]))


def format_table(rows: list[AccuracyRow]) -> str:
    """Render the predicted/measured comparison."""
    lines = ["Figure 17 — predicted vs measured memory footprint (~280 GB input):"]
    lines.append(f"{'benchmark':>18s} {'family':>15s} {'predicted GB':>13s} "
                 f"{'measured GB':>12s} {'error %':>8s}")
    for row in rows:
        lines.append(f"{row.benchmark:>18s} {row.family:>15s} "
                     f"{row.predicted_gb:13.2f} {row.measured_gb:12.2f} "
                     f"{row.error_percent:8.1f}")
    lines.append(f"mean absolute error: {mean_absolute_error_percent(rows):.1f}%")
    return "\n".join(lines)
