"""Table 5: prediction accuracy of alternative expert-selector classifiers.

The paper compares the KNN expert selector against Naive Bayes, SVM, MLP,
Random Forests, Decision Trees and an ANN, all trained on the same
features, and finds every classifier highly accurate (92–97 %); KNN is kept
because it matches the best accuracy and needs no retraining when a new
memory function is added.

Accuracy here is measured by leave-one-out cross-validation over noisy
re-profilings of the training programs: for each held-out program the
classifier must predict its memory-function family from features it has
never seen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feature_pipeline import FeaturePipeline
from repro.core.training import TrainingDataset, collect_training_data
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    LinearSVM,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.profiling.counters import synthesize_features
from repro.workloads.suites import benchmark_by_name

__all__ = ["ClassifierAccuracy", "CLASSIFIERS", "run", "format_table"]

#: Classifier constructors compared in Table 5.
CLASSIFIERS = {
    "Naive Bayes": lambda: GaussianNaiveBayes(),
    "SVM": lambda: LinearSVM(n_iter=150, seed=0),
    "MLP": lambda: MLPClassifier(hidden_units=12, n_iter=400, seed=0),
    "Random Forests": lambda: RandomForestClassifier(n_estimators=20, seed=0),
    "Decision Tree": lambda: DecisionTreeClassifier(),
    "ANN": lambda: MLPClassifier(hidden_units=24, n_iter=800, seed=1),
    "KNN": lambda: KNeighborsClassifier(n_neighbors=1),
}


@dataclass(frozen=True)
class ClassifierAccuracy:
    """Cross-validated family-prediction accuracy of one classifier."""

    classifier: str
    accuracy_percent: float


def run(dataset: TrainingDataset | None = None, n_repeats: int = 4,
        seed: int = 0) -> list[ClassifierAccuracy]:
    """Evaluate every classifier with leave-one-out cross-validation.

    ``n_repeats`` noisy profiling runs are drawn per held-out program so
    the reported accuracy reflects run-to-run measurement variation, not a
    single lucky sample.
    """
    dataset = dataset or collect_training_data(seed=seed)
    rng = np.random.default_rng(seed)
    names = dataset.names()
    results = []
    for label, factory in CLASSIFIERS.items():
        correct, total = 0, 0
        for held_out in names:
            reduced = dataset.excluding([held_out])
            pipeline = FeaturePipeline()
            transformed = pipeline.fit_transform(
                [example.features for example in reduced.examples]
            )
            model = factory()
            model.fit(transformed, np.asarray(reduced.families()))
            spec = benchmark_by_name(held_out)
            truth = dataset.example_for(held_out).family
            for _ in range(n_repeats):
                features = synthesize_features(spec, rng=rng, noise=0.03)
                query = pipeline.transform([features])
                predicted = model.predict(query)[0]
                correct += int(str(predicted) == truth)
                total += 1
        results.append(ClassifierAccuracy(
            classifier=label,
            accuracy_percent=100.0 * correct / total,
        ))
    return results


def format_table(results: list[ClassifierAccuracy]) -> str:
    """Render the Table 5 rows."""
    lines = ["Table 5 — expert-selector accuracy per classifier:"]
    for row in results:
        lines.append(f"  {row.classifier:15s} {row.accuracy_percent:5.1f}%")
    return "\n".join(lines)
