"""Compatibility shim — the suite disk cache moved to :mod:`repro.api.cache`.

.. deprecated::
    Import :func:`load_or_train_suite` and friends from :mod:`repro.api`
    instead; a :class:`repro.api.Session` consults the cache
    automatically, so most callers no longer need these functions
    directly.  Importing this module emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.experiments.suite_cache is deprecated; import the suite cache "
    "helpers from repro.api (a repro.api.Session consults the cache "
    "automatically)",
    DeprecationWarning, stacklevel=2)

from repro.api.cache import (  # noqa: E402
    CACHE_VERSION,
    default_cache_dir,
    load_or_train_suite,
    suite_cache_path,
    suite_fingerprint,
)
from repro.api.suite import SchedulerSuite  # noqa: E402

__all__ = ["CACHE_VERSION", "default_cache_dir", "suite_fingerprint",
           "suite_cache_path", "load_or_train_suite", "SchedulerSuite"]
