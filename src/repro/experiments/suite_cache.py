"""Compatibility shim — the suite disk cache moved to :mod:`repro.api.cache`.

Import :func:`load_or_train_suite` and friends from :mod:`repro.api`
instead; a :class:`repro.api.Session` consults the cache automatically,
so most callers no longer need these functions directly.
"""

from __future__ import annotations

from repro.api.cache import (
    CACHE_VERSION,
    default_cache_dir,
    load_or_train_suite,
    suite_cache_path,
    suite_fingerprint,
)
from repro.api.suite import SchedulerSuite

__all__ = ["CACHE_VERSION", "default_cache_dir", "suite_fingerprint",
           "suite_cache_path", "load_or_train_suite", "SchedulerSuite"]
