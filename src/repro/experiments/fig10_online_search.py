"""Figure 10: comparison against online (gradient-descent) search.

The online-search scheme finds executor allocations by runtime trial
instead of prediction; the paper reports that its search overhead makes it
roughly 2.4x/2.6x worse than the mixture-of-experts approach on STP/ANTT.
"""

from __future__ import annotations

from repro.api import (
    DEFAULT_SCENARIOS,
    ExperimentPlan,
    ScenarioResult,
    SchedulerSuite,
    Session,
    overall_geomean,
)

__all__ = ["SCHEMES", "run", "format_table", "stp_advantage"]

#: The schemes of Figure 10.
SCHEMES: tuple[str, ...] = ("online_search", "ours")


def run(scenarios=DEFAULT_SCENARIOS, n_mixes: int = 3, seed: int = 11,
        suite: SchedulerSuite | None = None,
        engine: str = "event", workers: int = 1,
        session: Session | None = None) -> list[ScenarioResult]:
    """Reproduce Figure 10 over the requested scenarios."""
    plan = ExperimentPlan(schemes=SCHEMES, scenarios=scenarios,
                          n_mixes=n_mixes, seed=seed, engine=engine,
                          workers=workers)
    if session is not None:
        return session.run(plan)
    with Session(suite=suite, use_cache=False) as own_session:
        return own_session.run(plan)


def stp_advantage(results: list[ScenarioResult]) -> float:
    """How many times better our approach is than online search on STP."""
    return (overall_geomean(results, "ours")
            / overall_geomean(results, "online_search"))


def format_table(results: list[ScenarioResult]) -> str:
    """Render the Figure 10 comparison."""
    scenarios = list(dict.fromkeys(r.scenario for r in results))
    lines = [f"{'scenario':>9s} {'online STP':>12s} {'ours STP':>12s} "
             f"{'online ANTTred%':>16s} {'ours ANTTred%':>14s}"]
    for scenario in scenarios:
        online = next(r for r in results
                      if r.scheme == "online_search" and r.scenario == scenario)
        ours = next(r for r in results
                    if r.scheme == "ours" and r.scenario == scenario)
        lines.append(f"{scenario:>9s} {online.stp_geomean:12.2f} "
                     f"{ours.stp_geomean:12.2f} "
                     f"{online.antt_reduction_mean:16.1f} "
                     f"{ours.antt_reduction_mean:14.1f}")
    lines.append(f"our approach delivers {stp_advantage(results):.1f}x the STP "
                 "of online search")
    return "\n".join(lines)
