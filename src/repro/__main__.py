"""``python -m repro`` — alias for the experiments CLI.

Makes the short invocations from the docs work directly::

    python -m repro env-train --scenario churn20 --iters 100 \
        --checkpoint policy.npz
    python -m repro env-rollout --scenario churn20 --policy learned
    python -m repro fig6 --quick
"""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
