"""Random-forest classifier built on the CART trees in this package.

One of the alternative expert-selector classifiers compared in Table 5 of
the paper (95.5 % accuracy in the paper's setting).
"""

from __future__ import annotations

import numpy as np

from repro.ml.decision_tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagged ensemble of decision trees with feature sub-sampling.

    Parameters
    ----------
    n_estimators:
        Number of trees in the forest.
    max_depth:
        Maximum depth of each tree.
    max_features:
        Features considered per split; ``None`` uses ``sqrt(n_features)``.
    seed:
        Seed controlling both bootstrap sampling and per-tree feature
        sampling, making the forest fully deterministic.
    """

    def __init__(self, n_estimators: int = 25, max_depth: int | None = None,
                 max_features: int | None = None, seed: int | None = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit each tree on a bootstrap resample of the training data."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        if len(X) == 0:
            raise ValueError("cannot fit a forest on zero samples")
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = X.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(n_features)))
        self.classes_ = np.asarray(sorted(set(y.tolist())))
        self.estimators_ = []
        for i in range(self.n_estimators):
            indices = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=max_features,
                seed=int(rng.integers(0, 2 ** 31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        """Majority vote across the fitted trees."""
        if not self.estimators_:
            raise RuntimeError("RandomForestClassifier must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        votes = np.stack([tree.predict(X) for tree in self.estimators_], axis=0)
        predictions = []
        for column in votes.T:
            values, counts = np.unique(column, return_counts=True)
            predictions.append(values[np.argmax(counts)])
        return np.asarray(predictions)
