"""Feature scaling utilities.

The paper scales every raw feature to the ``[0, 1]`` range using the minimum
and maximum values observed during training, and re-applies the recorded
bounds to features extracted from new applications at runtime
(Section 3.2, "Feature Scaling").
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler", "StandardScaler"]


class MinMaxScaler:
    """Scale each feature column to the ``[0, 1]`` interval.

    The minimum and maximum of each column are recorded at :meth:`fit` time
    and reused for any later :meth:`transform`, exactly as the paper records
    training-time bounds for runtime deployment.  Columns that are constant
    in the training data are mapped to ``0.0``.
    """

    def __init__(self) -> None:
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record per-column minima and maxima of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("MinMaxScaler expects a 2-D array")
        if X.shape[0] == 0:
            raise ValueError("cannot fit MinMaxScaler on an empty array")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale ``X`` using the recorded training bounds.

        Values outside the training range are clipped to ``[0, 1]`` so a
        runtime outlier cannot produce wildly out-of-range features.
        """
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        X = np.asarray(X, dtype=float)
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span == 0, 1.0, span)
        scaled = (X - self.data_min_) / safe_span
        scaled = np.where(span == 0, 0.0, scaled)
        return np.clip(scaled, 0.0, 1.0)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the scaler on ``X`` and return the scaled data."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original feature space."""
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before inverse_transform")
        X = np.asarray(X, dtype=float)
        span = self.data_max_ - self.data_min_
        return X * span + self.data_min_


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Used internally by PCA and the neural-network models, which converge
    poorly on unstandardised inputs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Record per-column means and standard deviations of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D array")
        if X.shape[0] == 0:
            raise ValueError("cannot fit StandardScaler on an empty array")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std == 0, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise ``X`` using the recorded statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the scaler on ``X`` and return the standardised data."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original feature space."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_
