"""Regression families used as memory-function "experts".

Table 1 of the paper lists the modelling techniques used to describe how an
application's memory footprint grows with its input size:

* (piecewise) linear regression, written by the paper as ``y = m * x^b``
  (a power law, which degenerates to a straight line when ``b = 1``);
* exponential (saturating) regression ``y = m * (1 - exp(-b * x))``;
* Napierian logarithmic regression ``y = m + ln(x) * b``.

Each family exposes the same small interface: ``fit`` from observed
``(x, y)`` samples, ``predict`` footprints for new input sizes, and
``calibrate`` the two coefficients from exactly two profiling measurements
(the paper's runtime calibration uses 5 % and 10 % of the input items).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RegressionModel",
    "LinearRegression",
    "PowerLawRegression",
    "ExponentialSaturationRegression",
    "NapierianLogRegression",
    "fit_least_squares",
]


def fit_least_squares(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Solve an ordinary least-squares problem ``design @ coeffs ≈ target``."""
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    return coeffs


@dataclass
class RegressionModel:
    """Base class for the two-parameter memory-function families.

    Attributes
    ----------
    m, b:
        The two coefficients of the family.  ``None`` until fitted or
        calibrated.
    """

    m: float | None = None
    b: float | None = None

    #: short machine-readable family name, overridden by subclasses
    name: str = "base"

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionModel":
        """Fit the coefficients from many observed samples."""
        raise NotImplementedError

    def predict(self, x) -> np.ndarray:
        """Predict the footprint for one or many input sizes."""
        raise NotImplementedError

    def calibrate(self, x1: float, y1: float, x2: float, y2: float) -> "RegressionModel":
        """Instantiate the coefficients from exactly two measurements.

        This mirrors the paper's runtime model calibration, which profiles
        the application on two small, different-sized subsets of the input
        and solves the function equation for ``m`` and ``b``.
        """
        raise NotImplementedError

    def _require_fitted(self) -> None:
        if self.m is None or self.b is None:
            raise RuntimeError(f"{type(self).__name__} has not been fitted")

    def error(self, x: np.ndarray, y: np.ndarray) -> float:
        """Root-mean-squared error of the fit on the given samples."""
        predictions = self.predict(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        return float(np.sqrt(np.mean((predictions - y) ** 2)))


class LinearRegression(RegressionModel):
    """Straight-line model ``y = m * x + b``.

    The degenerate member of the paper's "(piecewise) linear" family; it is
    also used as the building block of the piecewise/power-law variant.
    """

    name = "linear"

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.size < 2:
            raise ValueError("linear regression needs at least two samples")
        design = np.column_stack([x, np.ones_like(x)])
        slope, intercept = fit_least_squares(design, y)
        self.m, self.b = float(slope), float(intercept)
        return self

    def predict(self, x):
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        return self.m * x + self.b

    def calibrate(self, x1, y1, x2, y2):
        if x1 == x2:
            raise ValueError("calibration points must have distinct input sizes")
        self.m = (y2 - y1) / (x2 - x1)
        self.b = y1 - self.m * x1
        return self


class PowerLawRegression(RegressionModel):
    """Power-law model ``y = m * x ** b`` (the paper's Table 1 linear family).

    Fitting is done in log-log space, which turns the power law into a
    straight line; calibration from two points solves the same system
    exactly.
    """

    name = "power_law"

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if np.any(x <= 0) or np.any(y <= 0):
            raise ValueError("power-law regression requires positive samples")
        if x.size < 2:
            raise ValueError("power-law regression needs at least two samples")
        design = np.column_stack([np.log(x), np.ones_like(x)])
        exponent, log_scale = fit_least_squares(design, np.log(y))
        self.b = float(exponent)
        self.m = float(np.exp(log_scale))
        return self

    def predict(self, x):
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        return self.m * np.power(np.clip(x, 1e-12, None), self.b)

    def calibrate(self, x1, y1, x2, y2):
        if min(x1, x2, y1, y2) <= 0:
            raise ValueError("power-law calibration requires positive measurements")
        if x1 == x2:
            raise ValueError("calibration points must have distinct input sizes")
        self.b = float(np.log(y2 / y1) / np.log(x2 / x1))
        self.m = float(y1 / (x1 ** self.b))
        return self


class ExponentialSaturationRegression(RegressionModel):
    """Saturating exponential ``y = m * (1 - exp(-b * x))``.

    The paper fits this family to applications such as Sort, whose footprint
    grows quickly and then saturates near the executor heap limit
    (Figure 3a: ``m = 5.768``, ``b = 4.479``).
    """

    name = "exponential"

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.size < 2:
            raise ValueError("exponential regression needs at least two samples")
        if np.any(y <= 0):
            raise ValueError("exponential regression requires positive footprints")
        from scipy.optimize import curve_fit

        def saturating(x_values, m, b):
            return m * (1.0 - np.exp(-b * x_values))

        y_max = float(y.max())
        # Initial slope from the smallest sample: y ≈ m * b * x when b*x is small.
        smallest = int(np.argmin(x))
        b_guess = max(y[smallest] / (y_max * max(x[smallest], 1e-9)), 1e-3)
        try:
            (m_fit, b_fit), _ = curve_fit(
                saturating,
                x,
                y,
                p0=(y_max * 1.05, b_guess),
                bounds=([y_max * 0.7, 1e-9], [y_max * 1e3, 1e9]),
                maxfev=20000,
            )
        except RuntimeError as exc:  # pragma: no cover - scipy convergence failure
            raise ValueError("could not fit an exponential saturation model") from exc
        self.m, self.b = float(m_fit), float(b_fit)
        return self

    def predict(self, x):
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        return self.m * (1.0 - np.exp(-self.b * np.clip(x, 0.0, None)))

    def calibrate(self, x1, y1, x2, y2):
        if x1 == x2:
            raise ValueError("calibration points must have distinct input sizes")
        if min(y1, y2) <= 0:
            raise ValueError("exponential calibration requires positive footprints")
        # Solve m*(1-exp(-b*x1)) = y1 and m*(1-exp(-b*x2)) = y2 numerically
        # for b via bisection on the ratio equation, then back out m.
        if x1 > x2:
            x1, x2, y1, y2 = x2, x1, y2, y1
        target_ratio = y2 / y1

        def ratio(b: float) -> float:
            return (1.0 - np.exp(-b * x2)) / (1.0 - np.exp(-b * x1))

        lo, hi = 1e-9, 1.0
        # Expand until the bracket contains the target (ratio is decreasing
        # in b and tends to x2/x1 as b -> 0, to 1 as b -> inf).
        max_ratio = x2 / x1
        target_ratio = min(target_ratio, max_ratio * (1 - 1e-12))
        target_ratio = max(target_ratio, 1.0 + 1e-12)
        while ratio(hi) > target_ratio and hi < 1e9:
            hi *= 2.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if ratio(mid) > target_ratio:
                lo = mid
            else:
                hi = mid
        self.b = float(0.5 * (lo + hi))
        self.m = float(y1 / (1.0 - np.exp(-self.b * x1)))
        return self


class NapierianLogRegression(RegressionModel):
    """Napierian logarithmic model ``y = m + ln(x) * b``.

    The paper fits this family to applications such as PageRank
    (Figure 3b: ``m = 16.333``, ``b = 1.79``).
    """

    name = "napierian_log"

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if np.any(x <= 0):
            raise ValueError("logarithmic regression requires positive input sizes")
        if x.size < 2:
            raise ValueError("logarithmic regression needs at least two samples")
        design = np.column_stack([np.ones_like(x), np.log(x)])
        intercept, slope = fit_least_squares(design, y)
        self.m, self.b = float(intercept), float(slope)
        return self

    def predict(self, x):
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        return self.m + np.log(np.clip(x, 1e-12, None)) * self.b

    def calibrate(self, x1, y1, x2, y2):
        if min(x1, x2) <= 0:
            raise ValueError("logarithmic calibration requires positive input sizes")
        if x1 == x2:
            raise ValueError("calibration points must have distinct input sizes")
        self.b = (y2 - y1) / (np.log(x2) - np.log(x1))
        self.m = y1 - self.b * np.log(x1)
        return self
