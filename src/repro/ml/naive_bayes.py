"""Gaussian naive Bayes classifier.

One of the alternative expert-selector classifiers the paper compares
against in Table 5 (92.5 % accuracy in the paper's setting).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Naive Bayes with per-class Gaussian feature likelihoods."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None

    def fit(self, X, y) -> "GaussianNaiveBayes":
        """Estimate per-class feature means, variances and priors."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("GaussianNaiveBayes expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        self.classes_ = np.asarray(sorted(set(y.tolist())))
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        overall_var = X.var(axis=0).max() if len(X) > 1 else 1.0
        epsilon = self.var_smoothing * max(overall_var, 1e-12)
        for i, label in enumerate(self.classes_):
            members = X[y == label]
            self.theta_[i] = members.mean(axis=0)
            self.var_[i] = members.var(axis=0) + epsilon
            self.class_prior_[i] = len(members) / len(X)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_priors = np.log(self.class_prior_)
        likelihoods = []
        for i in range(len(self.classes_)):
            diff = X - self.theta_[i]
            log_prob = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[i]) + diff ** 2 / self.var_[i],
                axis=1,
            )
            likelihoods.append(log_priors[i] + log_prob)
        return np.column_stack(likelihoods)

    def predict_log_proba(self, X) -> np.ndarray:
        """Log class probabilities (unnormalised joint log-likelihoods normalised)."""
        if self.classes_ is None:
            raise RuntimeError("GaussianNaiveBayes must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        joint = self._joint_log_likelihood(X)
        # Normalise with the log-sum-exp trick.
        max_joint = joint.max(axis=1, keepdims=True)
        log_norm = max_joint + np.log(np.sum(np.exp(joint - max_joint), axis=1, keepdims=True))
        return joint - log_norm

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities for each sample."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X) -> np.ndarray:
        """Most probable class for each sample."""
        if self.classes_ is None:
            raise RuntimeError("GaussianNaiveBayes must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]
