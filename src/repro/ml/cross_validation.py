"""Cross-validation utilities.

The paper evaluates its predictor with leave-one-out cross-validation over
the training benchmarks (Section 5.2): the benchmark under test — and any
equivalent implementation of it in another suite — is excluded from the
training set.  This module provides the generic splitters; the
equivalent-benchmark exclusion policy lives in :mod:`repro.core.training`.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

__all__ = ["KFold", "LeaveOneOut", "train_test_split", "cross_val_score"]


class KFold:
    """Split sample indices into ``k`` folds, optionally shuffled."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False,
                 seed: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError("cannot split fewer samples than folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class LeaveOneOut:
    """Leave-one-out cross-validation splitter."""

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` with a single test sample."""
        if n_samples < 2:
            raise ValueError("leave-one-out needs at least two samples")
        indices = np.arange(n_samples)
        for i in range(n_samples):
            yield np.delete(indices, i), np.array([i])


def train_test_split(X, y, test_fraction: float = 0.25,
                     seed: int | None = None):
    """Randomly split paired arrays into train and test portions."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same number of samples")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_fraction)))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    if len(train_idx) == 0:
        raise ValueError("test_fraction leaves no training samples")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def cross_val_score(model_factory: Callable[[], object], X, y,
                    splitter=None) -> list[float]:
    """Run cross-validated classification accuracy.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh classifier exposing
        ``fit(X, y)`` and ``predict(X)``.
    X, y:
        Samples and labels.
    splitter:
        Object with a ``split(n_samples)`` method; defaults to
        :class:`LeaveOneOut`.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if splitter is None:
        splitter = LeaveOneOut()
    scores: list[float] = []
    for train_idx, test_idx in splitter.split(len(X)):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions = np.asarray(model.predict(X[test_idx]))
        scores.append(float(np.mean(predictions == y[test_idx])))
    return scores
