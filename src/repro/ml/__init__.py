"""From-scratch machine-learning substrate used by the reproduction.

The paper relies on standard supervised-learning building blocks (KNN, PCA,
Varimax rotation, decision trees, random forests, naive Bayes, SVM, and a
small feed-forward neural network) plus the regression families used as
memory-function "experts".  scikit-learn is not available in this offline
environment, so this package implements each algorithm directly on top of
NumPy.  The implementations favour clarity over raw speed; the data sizes in
the reproduction (tens of programs, a handful of features) are tiny.
"""

from repro.ml.scaler import MinMaxScaler, StandardScaler
from repro.ml.pca import PCA
from repro.ml.varimax import varimax, feature_contributions
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.svm import LinearSVM
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.regression import (
    LinearRegression,
    PowerLawRegression,
    ExponentialSaturationRegression,
    NapierianLogRegression,
    fit_least_squares,
)
from repro.ml.cross_validation import (
    KFold,
    LeaveOneOut,
    cross_val_score,
    train_test_split,
)
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
    root_mean_squared_error,
)

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "PCA",
    "varimax",
    "feature_contributions",
    "KNeighborsClassifier",
    "GaussianNaiveBayes",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LinearSVM",
    "MLPClassifier",
    "MLPRegressor",
    "LinearRegression",
    "PowerLawRegression",
    "ExponentialSaturationRegression",
    "NapierianLogRegression",
    "fit_least_squares",
    "KFold",
    "LeaveOneOut",
    "cross_val_score",
    "train_test_split",
    "accuracy_score",
    "confusion_matrix",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "root_mean_squared_error",
]
