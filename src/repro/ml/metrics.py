"""Classification and regression metrics used throughout the reproduction."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "root_mean_squared_error",
    "geometric_mean",
]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions that exactly match the true labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("accuracy_score requires at least one sample")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix with rows = true labels, columns = predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for truth, pred in zip(y_true, y_pred):
        matrix[index[truth], index[pred]] += 1
    return matrix


def mean_absolute_error(y_true, y_pred) -> float:
    """Average absolute difference between predictions and true values."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """Mean absolute percentage error (the paper's ~5 % accuracy metric)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if np.any(y_true == 0):
        raise ValueError("MAPE is undefined when a true value is zero")
    return float(np.mean(np.abs((y_true - y_pred) / y_true)) * 100.0)


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root of the mean squared prediction error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination of a regression fit."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - y_true.mean()) ** 2)
    if total == 0:
        return 1.0 if residual == 0 else 0.0
    return float(1.0 - residual / total)


def geometric_mean(values) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geometric-mean performance across task-mix
    configurations (Section 5.2).
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("geometric_mean requires at least one value")
    if np.any(values <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))
