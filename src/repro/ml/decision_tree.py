"""CART-style decision-tree classifier.

Decision trees are one of the alternative expert-selector classifiers the
paper compares against (Table 5, 96.8 % accuracy) and are the base learner
of the random forest in :mod:`repro.ml.random_forest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A node in the fitted tree; leaves carry a class label."""

    prediction: object = None
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None
    samples: int = 0
    class_counts: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(labels: np.ndarray) -> float:
    """Gini impurity of a label array."""
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - np.sum(proportions ** 2))


class DecisionTreeClassifier:
    """Binary CART tree grown by greedy Gini-impurity minimisation.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until pure or ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        If set, the number of features sampled (without replacement) at each
        split — used by the random forest for de-correlation.
    seed:
        Seed for the feature sub-sampling.
    """

    def __init__(self, max_depth: int | None = None, min_samples_split: int = 2,
                 max_features: int | None = None, seed: int | None = None) -> None:
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._rng = np.random.default_rng(seed)

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on the given samples."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("DecisionTreeClassifier expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._root = self._grow(X, y, depth=0)
        return self

    def _majority(self, y: np.ndarray) -> object:
        values, counts = np.unique(y, return_counts=True)
        return values[np.argmax(counts)]

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Find the (feature, threshold) pair with the lowest weighted Gini.

        Zero-gain splits are still accepted when the node is impure: patterns
        such as XOR have no single split that reduces the Gini impurity, yet
        splitting is required before any progress can be made deeper in the
        tree.  Every accepted split leaves both children non-empty, so the
        recursion always terminates.
        """
        best = None
        parent_impurity = _gini(y)
        n_samples, n_features = X.shape
        for feature in self._candidate_features(n_features):
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                left_mask = X[:, feature] <= threshold
                n_left = int(left_mask.sum())
                n_right = n_samples - n_left
                if n_left == 0 or n_right == 0:
                    continue
                impurity = (
                    n_left * _gini(y[left_mask]) + n_right * _gini(y[~left_mask])
                ) / n_samples
                gain = parent_impurity - impurity
                if gain < -1e-12:
                    continue
                if best is None or gain > best[0]:
                    best = (gain, int(feature), float(threshold))
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        values, counts = np.unique(y, return_counts=True)
        node = _Node(
            prediction=values[np.argmax(counts)],
            samples=len(y),
            class_counts={v: int(c) for v, c in zip(values.tolist(), counts.tolist())},
        )
        if len(values) == 1:
            return node
        if self.max_depth is not None and depth >= self.max_depth:
            return node
        if len(y) < self.min_samples_split:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        _, feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _predict_one(self, row: np.ndarray) -> object:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, X) -> np.ndarray:
        """Predict the class of each sample."""
        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.asarray([self._predict_one(row) for row in X])

    def depth(self) -> int:
        """Depth of the fitted tree (a single leaf has depth 0)."""
        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier must be fitted first")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if self._root is None:
            raise RuntimeError("DecisionTreeClassifier must be fitted first")

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + _count(node.left) + _count(node.right)

        return _count(self._root)
