"""K-nearest-neighbour classifier.

The paper's expert selector is a KNN classifier over the PCA-reduced feature
space (Section 3): the memory function of the nearest training program is
used for the incoming application, and the Euclidean distance to that
neighbour doubles as a confidence estimate — applications that are far from
every training program can be run under a conservative fallback policy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier:
    """Euclidean-distance KNN with majority voting.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted; the paper effectively uses the
        single nearest neighbour.
    """

    def __init__(self, n_neighbors: int = 1) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Memorise the training samples and labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("KNN expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        if len(X) == 0:
            raise ValueError("KNN requires at least one training sample")
        self._X = X
        self._y = y
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        """Pairwise Euclidean distances between queries and training rows."""
        diffs = X[:, None, :] - self._X[None, :, :]
        return np.sqrt(np.sum(diffs ** 2, axis=2))

    def kneighbors(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest neighbours."""
        if self._X is None or self._y is None:
            raise RuntimeError("KNN must be fitted before querying")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        distances = self._distances(X)
        k = min(self.n_neighbors, len(self._X))
        order = np.argsort(distances, axis=1)[:, :k]
        nearest = np.take_along_axis(distances, order, axis=1)
        return nearest, order

    def predict(self, X) -> np.ndarray:
        """Predict labels by majority vote among the nearest neighbours."""
        nearest, order = self.kneighbors(X)
        predictions = []
        for row_indices, row_distances in zip(order, nearest):
            labels = self._y[row_indices]
            # Majority vote; ties broken by the closer neighbour.
            best_label, best_score = None, None
            counted: dict[object, float] = {}
            for label, distance in zip(labels, row_distances):
                counted[label] = counted.get(label, 0.0) + 1.0
            for label, count in counted.items():
                # Prefer the label whose closest member is nearest.
                closest = min(d for lab, d in zip(labels, row_distances) if lab == label)
                score = (count, -closest)
                if best_score is None or score > best_score:
                    best_label, best_score = label, score
            predictions.append(best_label)
        return np.asarray(predictions)

    def predict_with_confidence(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Predict labels and return the nearest-neighbour distances.

        The distance to the nearest training program is the paper's
        prediction-confidence signal: a large distance means the target
        application looks unlike everything seen during training.
        """
        nearest, _ = self.kneighbors(X)
        return self.predict(X), nearest[:, 0]
