"""Linear support-vector machine trained with sub-gradient descent.

One of the alternative expert-selector classifiers compared in Table 5 of
the paper (95.4 % accuracy in the paper's setting).  Multi-class problems
are handled one-vs-rest.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """One-vs-rest linear SVM with hinge loss and L2 regularisation.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = less regularisation).
    learning_rate:
        Step size of the sub-gradient descent.
    n_iter:
        Number of passes over the training data.
    seed:
        Seed for the per-epoch sample shuffling.
    """

    def __init__(self, C: float = 1.0, learning_rate: float = 0.01,
                 n_iter: int = 300, seed: int | None = 0) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.biases_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVM":
        """Train one binary hinge-loss classifier per class."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("LinearSVM expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        self.classes_ = np.asarray(sorted(set(y.tolist())))
        n_classes = len(self.classes_)
        n_samples, n_features = X.shape
        self.weights_ = np.zeros((n_classes, n_features))
        self.biases_ = np.zeros(n_classes)
        rng = np.random.default_rng(self.seed)
        lambda_reg = 1.0 / (self.C * max(n_samples, 1))
        for class_index, label in enumerate(self.classes_):
            targets = np.where(y == label, 1.0, -1.0)
            weights = np.zeros(n_features)
            bias = 0.0
            for _ in range(self.n_iter):
                order = rng.permutation(n_samples)
                for i in order:
                    margin = targets[i] * (X[i] @ weights + bias)
                    if margin < 1.0:
                        weights = (1 - self.learning_rate * lambda_reg) * weights + \
                            self.learning_rate * targets[i] * X[i]
                        bias += self.learning_rate * targets[i]
                    else:
                        weights = (1 - self.learning_rate * lambda_reg) * weights
            self.weights_[class_index] = weights
            self.biases_[class_index] = bias
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed one-vs-rest margins, shape ``(n_samples, n_classes)``."""
        if self.weights_ is None:
            raise RuntimeError("LinearSVM must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.weights_.T + self.biases_

    def predict(self, X) -> np.ndarray:
        """Class with the largest one-vs-rest margin for each sample."""
        margins = self.decision_function(X)
        return self.classes_[np.argmax(margins, axis=1)]
