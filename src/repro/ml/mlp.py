"""Small feed-forward neural networks trained with backpropagation.

The paper uses a 3-layer artificial neural network (ANN) in two roles:

* as an alternative expert-selector classifier (Table 5, "MLP" and "ANN"
  rows), and
* as a unified single-model *regressor* that predicts the memory footprint
  directly from the runtime features and input size (Figure 9).

Both roles are covered here: :class:`MLPClassifier` for classification and
:class:`MLPRegressor` for footprint regression.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MLPClassifier", "MLPRegressor"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(float)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _BaseMLP:
    """Shared weight handling for the classifier and regressor variants."""

    def __init__(self, hidden_units: int, learning_rate: float, n_iter: int,
                 seed: int | None, l2: float) -> None:
        if hidden_units < 1:
            raise ValueError("hidden_units must be at least 1")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.seed = seed
        self.l2 = l2
        self._w1: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._w2: np.ndarray | None = None
        self._b2: np.ndarray | None = None

    def _init_weights(self, n_inputs: int, n_outputs: int) -> None:
        rng = np.random.default_rng(self.seed)
        scale1 = np.sqrt(2.0 / n_inputs)
        scale2 = np.sqrt(2.0 / self.hidden_units)
        self._w1 = rng.normal(0.0, scale1, size=(n_inputs, self.hidden_units))
        self._b1 = np.zeros(self.hidden_units)
        self._w2 = rng.normal(0.0, scale2, size=(self.hidden_units, n_outputs))
        self._b2 = np.zeros(n_outputs)

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pre_hidden = X @ self._w1 + self._b1
        hidden = _relu(pre_hidden)
        output = hidden @ self._w2 + self._b2
        return pre_hidden, output

    def _backward(self, X: np.ndarray, pre_hidden: np.ndarray,
                  output_grad: np.ndarray) -> None:
        hidden = _relu(pre_hidden)
        grad_w2 = hidden.T @ output_grad + self.l2 * self._w2
        grad_b2 = output_grad.sum(axis=0)
        hidden_grad = (output_grad @ self._w2.T) * _relu_grad(pre_hidden)
        grad_w1 = X.T @ hidden_grad + self.l2 * self._w1
        grad_b1 = hidden_grad.sum(axis=0)
        self._w2 -= self.learning_rate * grad_w2
        self._b2 -= self.learning_rate * grad_b2
        self._w1 -= self.learning_rate * grad_w1
        self._b1 -= self.learning_rate * grad_b1


class MLPClassifier(_BaseMLP):
    """Single-hidden-layer softmax classifier trained with backpropagation."""

    def __init__(self, hidden_units: int = 16, learning_rate: float = 0.05,
                 n_iter: int = 500, seed: int | None = 0, l2: float = 1e-4) -> None:
        super().__init__(hidden_units, learning_rate, n_iter, seed, l2)
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "MLPClassifier":
        """Train on the given samples with full-batch gradient descent."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("MLPClassifier expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        self.classes_ = np.asarray(sorted(set(y.tolist())))
        label_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        targets = np.zeros((len(y), len(self.classes_)))
        for row, label in enumerate(y.tolist()):
            targets[row, label_index[label]] = 1.0
        self._init_weights(X.shape[1], len(self.classes_))
        n_samples = len(X)
        for _ in range(self.n_iter):
            pre_hidden, logits = self._forward(X)
            probabilities = _softmax(logits)
            output_grad = (probabilities - targets) / n_samples
            self._backward(X, pre_hidden, output_grad)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities for each sample."""
        if self._w1 is None:
            raise RuntimeError("MLPClassifier must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        _, logits = self._forward(X)
        return _softmax(logits)

    def predict(self, X) -> np.ndarray:
        """Most probable class for each sample."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class MLPRegressor(_BaseMLP):
    """Single-hidden-layer regression network with a linear output unit.

    Inputs and targets are internally standardised so the default learning
    rate behaves sensibly across the wide dynamic ranges seen in memory
    footprints (megabytes to terabytes of input).
    """

    def __init__(self, hidden_units: int = 16, learning_rate: float = 0.01,
                 n_iter: int = 2000, seed: int | None = 0, l2: float = 1e-5) -> None:
        super().__init__(hidden_units, learning_rate, n_iter, seed, l2)
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean: float | None = None
        self._y_scale: float | None = None

    def fit(self, X, y) -> "MLPRegressor":
        """Train on the given samples with full-batch gradient descent."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2:
            raise ValueError("MLPRegressor expects a 2-D sample matrix")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of samples")
        self._x_mean = X.mean(axis=0)
        x_std = X.std(axis=0)
        self._x_scale = np.where(x_std == 0, 1.0, x_std)
        self._y_mean = float(y.mean())
        y_std = float(y.std())
        self._y_scale = y_std if y_std > 0 else 1.0
        X_scaled = (X - self._x_mean) / self._x_scale
        y_scaled = (y - self._y_mean) / self._y_scale
        self._init_weights(X.shape[1], 1)
        n_samples = len(X)
        for _ in range(self.n_iter):
            pre_hidden, output = self._forward(X_scaled)
            output_grad = 2.0 * (output - y_scaled) / n_samples
            self._backward(X_scaled, pre_hidden, output_grad)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict a real-valued target for each sample."""
        if self._w1 is None:
            raise RuntimeError("MLPRegressor must be fitted before predicting")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        X_scaled = (X - self._x_mean) / self._x_scale
        _, output = self._forward(X_scaled)
        return output.ravel() * self._y_scale + self._y_mean
