"""Principal Component Analysis.

The paper applies PCA to the scaled 22-dimensional raw feature vectors and
keeps the top five principal components, which account for ~95 % of the
variance (Section 3.2, Figure 4a).  The transformation matrix learned during
training is stored and re-applied to features extracted at runtime.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    n_components:
        Number of components to keep.  ``None`` keeps every component.
        A float in ``(0, 1)`` keeps the smallest number of components whose
        cumulative explained-variance ratio reaches that fraction (the paper
        uses 0.95).
    """

    def __init__(self, n_components: int | float | None = None) -> None:
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.n_components_: int | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Learn the principal axes of ``X`` (rows are samples)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("PCA expects a 2-D array")
        n_samples, n_features = X.shape
        if n_samples < 2:
            raise ValueError("PCA requires at least two samples")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # SVD of the centered data: principal axes are the right singular
        # vectors; singular values relate to component variances.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variances = (singular_values ** 2) / (n_samples - 1)
        total = variances.sum()
        ratios = variances / total if total > 0 else np.zeros_like(variances)

        n_available = len(variances)
        if self.n_components is None:
            keep = n_available
        elif isinstance(self.n_components, float) and 0 < self.n_components < 1:
            cumulative = np.cumsum(ratios)
            keep = int(np.searchsorted(cumulative, self.n_components) + 1)
            keep = min(keep, n_available)
        else:
            keep = int(self.n_components)
            if keep <= 0:
                raise ValueError("n_components must be positive")
            keep = min(keep, n_available)

        self.components_ = vt[:keep]
        self.explained_variance_ = variances[:keep]
        self.explained_variance_ratio_ = ratios[:keep]
        self.n_components_ = keep
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project ``X`` onto the learned principal components."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the PCA on ``X`` and return the projected data."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map projected data back into the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before inverse_transform")
        X = np.asarray(X, dtype=float)
        return X @ self.components_ + self.mean_
