"""Varimax rotation and feature-contribution analysis.

The paper applies a Varimax rotation to the PCA loading matrix to quantify
how much each raw feature contributes to the retained principal components
(Section 3.2, "Feature Analysis", Figure 4b).  The rotation maximises the
variance of the squared loadings, which concentrates each component's weight
onto a small number of raw features and makes the contributions easier to
interpret.
"""

from __future__ import annotations

import numpy as np

__all__ = ["varimax", "feature_contributions"]


def varimax(loadings: np.ndarray, gamma: float = 1.0, max_iter: int = 200,
            tol: float = 1e-8) -> np.ndarray:
    """Rotate a loading matrix using the Varimax criterion.

    Parameters
    ----------
    loadings:
        ``(n_features, n_components)`` loading matrix (for PCA, the
        transposed ``components_`` weighted by the singular values or used
        directly; any loading convention works because the rotation is
        orthogonal).
    gamma:
        Rotation family parameter; ``1.0`` is the classic Varimax.
    max_iter:
        Maximum number of rotation sweeps.
    tol:
        Relative convergence tolerance on the accumulated singular values.

    Returns
    -------
    numpy.ndarray
        The rotated loading matrix, same shape as the input.
    """
    loadings = np.asarray(loadings, dtype=float)
    if loadings.ndim != 2:
        raise ValueError("varimax expects a 2-D loading matrix")
    n_features, n_components = loadings.shape
    if n_components < 2:
        # Nothing to rotate with a single component.
        return loadings.copy()

    rotation = np.eye(n_components)
    variance_accum = 0.0
    for _ in range(max_iter):
        rotated = loadings @ rotation
        # Gradient of the Varimax criterion.
        target = rotated ** 3 - (gamma / n_features) * rotated @ np.diag(
            np.sum(rotated ** 2, axis=0)
        )
        u, s, vt = np.linalg.svd(loadings.T @ target)
        rotation = u @ vt
        new_accum = float(np.sum(s))
        if variance_accum != 0 and new_accum < variance_accum * (1 + tol):
            break
        variance_accum = new_accum
    return loadings @ rotation


def feature_contributions(loadings: np.ndarray,
                          feature_names: list[str] | None = None,
                          rotate: bool = True) -> dict[str, float]:
    """Compute each raw feature's percentage contribution to the variance.

    The contribution of a feature is the sum of its squared (rotated)
    loadings across all retained components, normalised so the contributions
    sum to 100.  This mirrors Figure 4b of the paper, which ranks raw
    features by their contribution to the PCA space.

    Parameters
    ----------
    loadings:
        ``(n_features, n_components)`` loading matrix.
    feature_names:
        Optional names; defaults to ``f0 .. fN``.
    rotate:
        Whether to apply the Varimax rotation before measuring contributions.

    Returns
    -------
    dict
        Mapping from feature name to percentage contribution, sorted in
        descending order of contribution.
    """
    loadings = np.asarray(loadings, dtype=float)
    if rotate:
        loadings = varimax(loadings)
    squared = loadings ** 2
    per_feature = squared.sum(axis=1)
    total = per_feature.sum()
    if total == 0:
        percentages = np.zeros_like(per_feature)
    else:
        percentages = 100.0 * per_feature / total
    if feature_names is None:
        feature_names = [f"f{i}" for i in range(len(per_feature))]
    if len(feature_names) != len(per_feature):
        raise ValueError("feature_names length does not match loading matrix")
    pairs = sorted(zip(feature_names, percentages), key=lambda kv: kv[1],
                   reverse=True)
    return {name: float(pct) for name, pct in pairs}
