"""PARSEC-like computation-intensive workloads.

Figure 15 of the paper co-locates twelve C/C++ PARSEC 3.0 benchmarks
(native inputs) with Spark tasks and reports the slowdown distribution.
PARSEC binaries are not available offline, so each benchmark is described
by the parameters the interference model needs: its CPU demand, its memory
footprint (PARSEC native working sets are small relative to a 64 GB node)
and its isolated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ParsecSpec", "PARSEC_BENCHMARKS", "parsec_by_name"]


@dataclass(frozen=True)
class ParsecSpec:
    """Behavioural description of one PARSEC benchmark (native input).

    Parameters
    ----------
    name:
        Benchmark name as used in the paper's Figure 15.
    cpu_load:
        CPU demand as a fraction of one node's compute capacity.  PARSEC
        programs are compute bound, so these are high (0.6–1.0).
    footprint_gb:
        Resident memory of the benchmark with the native input.
    runtime_min:
        Isolated execution time in minutes on one node.
    memory_sensitivity:
        How strongly the benchmark's progress degrades per unit of
        co-runner memory-bandwidth pressure; cache-sensitive codes
        (e.g. canneal, streamcluster) are higher.
    """

    name: str
    cpu_load: float
    footprint_gb: float
    runtime_min: float
    memory_sensitivity: float

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_load <= 1.0:
            raise ValueError(f"{self.name}: cpu_load must be in (0, 1]")
        if self.runtime_min <= 0:
            raise ValueError(f"{self.name}: runtime_min must be positive")
        if not 0.0 <= self.memory_sensitivity <= 1.0:
            raise ValueError(f"{self.name}: memory_sensitivity must be in [0, 1]")


PARSEC_BENCHMARKS: tuple[ParsecSpec, ...] = (
    ParsecSpec("Blackscholes", 0.95, 0.7, 6.0, 0.10),
    ParsecSpec("Bodytrack", 0.90, 0.4, 8.0, 0.25),
    ParsecSpec("Canneal", 0.70, 1.1, 10.0, 0.65),
    ParsecSpec("Facesim", 0.85, 0.9, 12.0, 0.40),
    ParsecSpec("Ferret", 0.88, 0.5, 9.0, 0.35),
    ParsecSpec("Fluidanimate", 0.92, 0.8, 11.0, 0.45),
    ParsecSpec("Freqmine", 0.86, 1.3, 10.0, 0.40),
    ParsecSpec("Raytrace", 0.80, 1.5, 9.0, 0.30),
    ParsecSpec("Streamcluster", 0.75, 0.3, 13.0, 0.70),
    ParsecSpec("Swaptions", 0.97, 0.1, 7.0, 0.05),
    ParsecSpec("Vips", 0.82, 0.6, 8.0, 0.30),
    ParsecSpec("X264", 0.90, 0.5, 7.0, 0.35),
)

_BY_NAME = {spec.name: spec for spec in PARSEC_BENCHMARKS}


def parsec_by_name(name: str) -> ParsecSpec:
    """Look up a PARSEC benchmark specification by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown PARSEC benchmark: {name!r}") from None
