"""Arrival processes: when the jobs of a scenario enter the queue.

The paper's Table-3 scenarios are *closed batches* — every application is
submitted together at t=0 and the schedulers compete on draining the
backlog.  Open systems look different: jobs trickle in over time, arrive in
bursts, or follow a daily load curve, and a scheduler that wins on batch
drain can lose on arrival absorption.  This module provides the arrival
processes the scenario subsystem (:mod:`repro.scenarios`) composes with a
workload source and a cluster topology:

``batch``
    Everything at t=0 (the seed behaviour; the identity process).
``poisson``
    Open arrivals with exponential inter-arrival times at a constant mean
    rate — the standard open-system model.
``bursty``
    An on/off (interrupted Poisson) process: arrivals come at the burst
    rate during ON windows and not at all during OFF windows, stressing a
    scheduler's burst absorption.
``diurnal``
    A non-homogeneous Poisson process whose intensity replays a relative
    load profile over a repeating period (by default a 24-hour curve with a
    business-hours peak), the shape production traces exhibit.

Every process is driven by a caller-supplied :class:`numpy.random.Generator`
so one seeded generator can reproduce a full scenario exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.workloads.mixes import Job

__all__ = [
    "ARRIVAL_KINDS",
    "DEFAULT_DIURNAL_PROFILE",
    "ArrivalSpec",
    "batch_arrival_times",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "diurnal_arrival_times",
]

#: Arrival-process kinds understood by :class:`ArrivalSpec`.
ARRIVAL_KINDS: tuple[str, ...] = ("batch", "poisson", "bursty", "diurnal")

#: Relative load per hour of a 24-hour day: low overnight, ramping through
#: the morning to a mid-day plateau, easing off in the evening.  Only the
#: *shape* matters — the diurnal process rescales it to the requested mean
#: rate.
DEFAULT_DIURNAL_PROFILE: tuple[float, ...] = (
    1.0, 1.0, 1.0, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 10.0, 10.0, 9.0,
    8.0, 9.0, 10.0, 10.0, 9.0, 8.0, 6.0, 4.0, 3.0, 2.0, 1.5, 1.0,
)


def batch_arrival_times(n: int, rng: np.random.Generator) -> np.ndarray:
    """All ``n`` jobs at t=0 — the paper's closed-batch submission."""
    del rng  # deterministic; accepted for interface uniformity
    return np.zeros(n)


def poisson_arrival_times(n: int, rng: np.random.Generator,
                          rate_per_min: float) -> np.ndarray:
    """Open Poisson arrivals: exponential inter-arrival times, mean 1/rate."""
    if rate_per_min <= 0:
        raise ValueError("rate_per_min must be positive")
    return np.cumsum(rng.exponential(1.0 / rate_per_min, size=n))


def bursty_arrival_times(n: int, rng: np.random.Generator,
                         rate_per_min: float, on_min: float,
                         off_min: float) -> np.ndarray:
    """On/off arrivals: Poisson at ``rate_per_min`` during ON windows only.

    The process is an interrupted Poisson process with deterministic window
    lengths: arrivals are drawn on the concatenated ON-time axis and then
    mapped back to wall-clock time by inserting the OFF gaps, so every
    arrival lands inside an ON window by construction.
    """
    if rate_per_min <= 0:
        raise ValueError("rate_per_min must be positive")
    if on_min <= 0:
        raise ValueError("on_min must be positive")
    if off_min < 0:
        raise ValueError("off_min cannot be negative")
    on_axis = np.cumsum(rng.exponential(1.0 / rate_per_min, size=n))
    cycles = np.floor(on_axis / on_min)
    return on_axis + cycles * off_min


def diurnal_arrival_times(n: int, rng: np.random.Generator,
                          rate_per_min: float, period_min: float,
                          profile: tuple[float, ...]) -> np.ndarray:
    """Non-homogeneous Poisson arrivals replaying a periodic load profile.

    ``profile`` holds the relative intensity of equal-length buckets tiling
    one period; it is rescaled so the *mean* rate over a full period equals
    ``rate_per_min``.  Sampling uses thinning: candidates are drawn from a
    homogeneous process at the peak rate and accepted with probability
    intensity(t)/peak.
    """
    if rate_per_min <= 0:
        raise ValueError("rate_per_min must be positive")
    if period_min <= 0:
        raise ValueError("period_min must be positive")
    weights = np.asarray(profile, dtype=float)
    if weights.size < 1 or np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("profile needs non-negative weights, not all zero")
    intensity = weights * (rate_per_min / weights.mean())
    peak = float(intensity.max())
    bucket_min = period_min / weights.size
    times = np.empty(n)
    accepted = 0
    t = 0.0
    while accepted < n:
        t += rng.exponential(1.0 / peak)
        bucket = int((t % period_min) / bucket_min)
        if rng.uniform() * peak <= intensity[bucket]:
            times[accepted] = t
            accepted += 1
    return times


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of an arrival process.

    Parameters
    ----------
    kind:
        One of :data:`ARRIVAL_KINDS`.
    rate_per_min:
        Mean arrival rate (``poisson``/``diurnal``) or in-burst rate
        (``bursty``), in jobs per simulated minute.  Ignored by ``batch``.
    on_min, off_min:
        ON/OFF window lengths of the ``bursty`` process.
    period_min:
        Length of one ``diurnal`` cycle (default: a 24-hour day).
    profile:
        Relative intensities of the ``diurnal`` buckets tiling one period
        (default: :data:`DEFAULT_DIURNAL_PROFILE`).
    """

    kind: str = "batch"
    rate_per_min: float = 0.1
    on_min: float = 15.0
    off_min: float = 45.0
    period_min: float = 1440.0
    profile: tuple[float, ...] = DEFAULT_DIURNAL_PROFILE

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r}; "
                             f"expected one of {ARRIVAL_KINDS}")
        # Draw once eagerly so a bad parameterisation fails at spec
        # construction, not in the middle of an experiment grid.
        self.arrival_times(1, np.random.default_rng(0))

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` non-decreasing submission times (minutes)."""
        if n < 0:
            raise ValueError("n cannot be negative")
        if n == 0:
            return np.zeros(0)
        if self.kind == "batch":
            return batch_arrival_times(n, rng)
        if self.kind == "poisson":
            return poisson_arrival_times(n, rng, self.rate_per_min)
        if self.kind == "bursty":
            return bursty_arrival_times(n, rng, self.rate_per_min,
                                        self.on_min, self.off_min)
        return diurnal_arrival_times(n, rng, self.rate_per_min,
                                     self.period_min, self.profile)

    def apply(self, jobs: list[Job], rng: np.random.Generator) -> list[Job]:
        """Stamp submission times onto ``jobs`` (in submission order).

        Batch mode returns the jobs unchanged — bit-for-bit, so the seed
        Table-3 scenarios are reproduced exactly through the scenario path.
        """
        if self.kind == "batch":
            return list(jobs)
        times = self.arrival_times(len(jobs), rng)
        return [dataclasses.replace(job, submit_time_min=float(t))
                for job, t in zip(jobs, times)]

    # ------------------------------------------------------------------
    # Declarative (JSON) form
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict, omitting parameters the kind does not use."""
        payload: dict = {"kind": self.kind}
        if self.kind in ("poisson", "bursty", "diurnal"):
            payload["rate_per_min"] = self.rate_per_min
        if self.kind == "bursty":
            payload["on_min"] = self.on_min
            payload["off_min"] = self.off_min
        if self.kind == "diurnal":
            payload["period_min"] = self.period_min
            payload["profile"] = list(self.profile)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrivalSpec":
        """Build a spec from its dict form (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown arrival parameters: {sorted(unknown)}")
        kwargs = dict(payload)
        if "profile" in kwargs:
            kwargs["profile"] = tuple(kwargs["profile"])
        return cls(**kwargs)
