"""Input-size generation.

The paper's runtime scenarios use inputs ranging from small (~300 MB)
through medium (~30 GB) to large (~1 TB), generated with each suite's data
generator (Section 5.2).  This module provides the equivalent synthetic
sampling plus the named sizes used by individual experiments (e.g. the
~280 GB inputs of Figures 12, 14 and 17).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["InputSize", "INPUT_SIZE_GB", "sample_input_size", "profiling_sample_gb"]


class InputSize(str, Enum):
    """Named input-size categories used in the paper's evaluation."""

    SMALL = "small"      # ~300 MB
    MEDIUM = "medium"    # ~30 GB
    LARGE = "large"      # ~1 TB


#: Representative size in gigabytes for each named category.
INPUT_SIZE_GB: dict[InputSize, float] = {
    InputSize.SMALL: 0.3,
    InputSize.MEDIUM: 30.0,
    InputSize.LARGE: 1000.0,
}

#: Size of the data sample used for feature extraction (~100 MB,
#: Section 2.3) expressed in gigabytes.
PROFILING_FEATURE_SAMPLE_GB = 0.1


def profiling_sample_gb() -> float:
    """Size (GB) of the ~100 MB sample used for runtime feature extraction."""
    return PROFILING_FEATURE_SAMPLE_GB


def sample_input_size(rng: np.random.Generator,
                      jitter: float = 0.25) -> tuple[InputSize, float]:
    """Draw a named input size and a jittered concrete size in gigabytes.

    The category is drawn uniformly from small/medium/large, matching the
    paper's statement that scenario inputs range across the three classes;
    ``jitter`` applies a multiplicative spread so repeated draws of the same
    category do not produce identical workloads.
    """
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    categories = (InputSize.SMALL, InputSize.MEDIUM, InputSize.LARGE)
    category = categories[int(rng.integers(0, len(categories)))]
    base = INPUT_SIZE_GB[category]
    factor = 1.0 + rng.uniform(-jitter, jitter)
    return category, float(base * factor)
