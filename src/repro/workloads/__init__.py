"""Benchmark catalogue and workload generation.

The paper evaluates on 44 Java-based Spark applications drawn from four
suites — HiBench, BigDataBench, Spark-Perf and Spark-Bench — plus 12
computation-intensive PARSEC applications for the interference study
(Figures 14 and 15).  Real benchmark binaries and their terabyte-scale
inputs are not available offline, so this package provides a synthetic
catalogue whose *behavioural parameters* (memory-footprint curve family,
CPU load in isolation, processing rate) follow the shapes reported in the
paper.  Everything downstream (profiling, prediction, scheduling,
simulation) treats these specifications as opaque ground truth, exactly as
the paper treats its applications as black boxes.
"""

from repro.workloads.benchmark import (
    BenchmarkSpec,
    MemoryBehavior,
    Suite,
    WorkloadClass,
)
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    TRAINING_BENCHMARKS,
    benchmark_by_name,
    benchmarks_by_suite,
    equivalent_benchmarks,
)
from repro.workloads.parsec import PARSEC_BENCHMARKS, ParsecSpec
from repro.workloads.arrivals import ARRIVAL_KINDS, ArrivalSpec
from repro.workloads.mixes import (
    SCENARIOS,
    TABLE4_MIX,
    Job,
    make_scenario_mixes,
    scenario_app_count,
)
from repro.workloads.inputs import InputSize, sample_input_size

__all__ = [
    "BenchmarkSpec",
    "MemoryBehavior",
    "Suite",
    "WorkloadClass",
    "ALL_BENCHMARKS",
    "TRAINING_BENCHMARKS",
    "benchmark_by_name",
    "benchmarks_by_suite",
    "equivalent_benchmarks",
    "PARSEC_BENCHMARKS",
    "ParsecSpec",
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "SCENARIOS",
    "TABLE4_MIX",
    "Job",
    "make_scenario_mixes",
    "scenario_app_count",
    "InputSize",
    "sample_input_size",
]
