"""Benchmark specifications and their ground-truth behaviour models.

A :class:`BenchmarkSpec` captures everything the simulator needs to know
about a Spark application:

* its **memory behaviour** — which of the paper's three function families
  (Table 1) describes how the executor footprint grows with the amount of
  input data the executor caches, and with what coefficients;
* its **CPU load** when running in isolation (paper Figure 13 reports most
  benchmarks below 40 %);
* its **processing rate**, which determines the isolated execution time for
  a given input size; and
* its **workload class**, which drives the synthetic runtime features
  produced by :mod:`repro.profiling`.

The prediction framework never reads these fields directly; it only
observes footprints and features through profiling runs, mirroring the
paper's black-box treatment of applications.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

__all__ = ["Suite", "WorkloadClass", "MemoryBehavior", "BenchmarkSpec"]


class Suite(str, Enum):
    """Benchmark suite of origin (paper Section 5.1)."""

    HIBENCH = "HiBench"
    BIGDATABENCH = "BigDataBench"
    SPARK_PERF = "Spark-Perf"
    SPARK_BENCH = "Spark-Bench"


class WorkloadClass(str, Enum):
    """Coarse application domain, used to synthesise runtime features.

    Benchmarks in the same class exhibit similar cache/IO/contention
    behaviour, which is what makes the paper's KNN expert selector work
    (programs with similar features share a memory function — Figure 16).
    """

    SHUFFLE = "shuffle"          # sort / terasort / scan style data movement
    TEXT = "text"                # wordcount / grep style scanning
    SQL = "sql"                  # join / aggregation / hive queries
    GRAPH = "graph"              # pagerank / connected components
    ML_ITERATIVE = "ml_iterative"  # kmeans / regression / bayes
    LINEAR_ALGEBRA = "linear_algebra"  # matrix factorisation / PCA / SVD


class MemoryBehavior(str, Enum):
    """The three memory-function families of Table 1."""

    POWER_LAW = "power_law"             # y = m * x ** b
    EXPONENTIAL = "exponential"         # y = m * (1 - exp(-b * x))
    NAPIERIAN_LOG = "napierian_log"     # y = m + ln(x) * b


@dataclass(frozen=True)
class BenchmarkSpec:
    """Ground-truth behavioural description of one Spark benchmark.

    Parameters
    ----------
    name:
        Qualified benchmark name, e.g. ``"HB.Sort"``.
    suite:
        Suite of origin.
    workload_class:
        Coarse domain used for feature synthesis.
    memory_behavior:
        Which Table 1 family the executor footprint follows.
    memory_m, memory_b:
        Ground-truth coefficients of that family.  The input variable is
        the number of gigabytes of input data cached by one executor, and
        the output is the executor's resident footprint in gigabytes.
    min_footprint_gb:
        Footprint of an executor that caches (almost) no data — the JVM
        heap, Spark runtime structures and so on.
    cpu_load:
        Average CPU utilisation (fraction of one node's compute capacity)
        when the application runs in isolation.
    rate_gb_per_min:
        Data processed per executor per minute at full CPU availability.
    startup_min:
        Fixed per-application startup cost (driver + executor launch).
    equivalent_group:
        Benchmarks implementing the same algorithm in different suites
        share a group label (e.g. ``"sort"``); the leave-one-out protocol
        excludes the whole group from training (paper Section 5.2).
    """

    name: str
    suite: Suite
    workload_class: WorkloadClass
    memory_behavior: MemoryBehavior
    memory_m: float
    memory_b: float
    min_footprint_gb: float
    cpu_load: float
    rate_gb_per_min: float
    startup_min: float = 1.0
    equivalent_group: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_load <= 1.0:
            raise ValueError(f"{self.name}: cpu_load must be in (0, 1]")
        if self.rate_gb_per_min <= 0:
            raise ValueError(f"{self.name}: rate_gb_per_min must be positive")
        if self.min_footprint_gb < 0:
            raise ValueError(f"{self.name}: min_footprint_gb cannot be negative")

    # ------------------------------------------------------------------
    # Ground-truth behaviour
    # ------------------------------------------------------------------
    def true_footprint_gb(self, cached_gb: float) -> float:
        """Executor memory footprint for ``cached_gb`` of cached input data.

        This is the quantity the paper's memory functions approximate.  The
        returned footprint never drops below :attr:`min_footprint_gb`.
        """
        if cached_gb < 0:
            raise ValueError("cached_gb cannot be negative")
        x = max(cached_gb, 1e-6)
        if self.memory_behavior is MemoryBehavior.POWER_LAW:
            footprint = self.memory_m * x ** self.memory_b
        elif self.memory_behavior is MemoryBehavior.EXPONENTIAL:
            footprint = self.memory_m * (1.0 - math.exp(-self.memory_b * x))
        else:
            footprint = self.memory_m + math.log(x) * self.memory_b
        return max(footprint, self.min_footprint_gb)

    def data_for_budget_gb(self, budget_gb: float, max_gb: float = 1e6) -> float:
        """Largest amount of data whose true footprint fits in ``budget_gb``.

        This is the oracle inverse of :meth:`true_footprint_gb`, used by the
        Oracle scheduler.  A binary search is used because the footprint
        curve is monotone non-decreasing for every family.
        """
        if budget_gb <= 0:
            return 0.0
        if self.true_footprint_gb(1e-6) > budget_gb:
            return 0.0
        lo, hi = 0.0, max_gb
        if self.true_footprint_gb(hi) <= budget_gb:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.true_footprint_gb(mid) <= budget_gb:
                lo = mid
            else:
                hi = mid
        return lo

    def isolated_runtime_min(self, input_gb: float, n_executors: int = 1) -> float:
        """Execution time in minutes with dedicated resources.

        The application is data parallel: with ``n_executors`` executors and
        no resource contention, the input is processed at ``n_executors``
        times the single-executor rate, plus the fixed startup cost.
        """
        if input_gb < 0:
            raise ValueError("input_gb cannot be negative")
        if n_executors < 1:
            raise ValueError("n_executors must be at least 1")
        return self.startup_min + input_gb / (self.rate_gb_per_min * n_executors)

    def observed_footprint_gb(self, cached_gb: float, rng=None,
                              noise: float = 0.02) -> float:
        """A noisy profiling measurement of the true footprint.

        Real measurements of resident set size fluctuate with GC timing and
        OS caching; ``noise`` is the relative standard deviation of that
        fluctuation.
        """
        footprint = self.true_footprint_gb(cached_gb)
        if rng is None or noise <= 0:
            return footprint
        return float(max(footprint * (1.0 + rng.normal(0.0, noise)),
                         self.min_footprint_gb * 0.5))
