"""The 44-benchmark catalogue used throughout the evaluation.

The paper draws 44 Spark applications from HiBench, BigDataBench,
Spark-Perf and Spark-Bench (Section 5.1); its predictor is trained on the
16 HiBench + BigDataBench programs and evaluated on all 44
(Section 5.2).  The ground-truth coefficients below are synthetic but follow
the published behaviour:

* the simple data-movement benchmarks (sort/scan/wordcount style) saturate
  at a few gigabytes per executor and are well described by the exponential
  family — e.g. the paper fits HiBench Sort with ``m = 5.768, b = 4.479``
  (Figure 3a);
* the graph benchmarks keep growing with input size and follow the
  Napierian-log family — e.g. PageRank with ``m = 16.333, b = 1.79``
  (Figure 3b);
* the iterative-ML, statistics and linear-algebra benchmarks grow
  polynomially with cached data and follow the power-law family;
* CPU load in isolation is mostly below 40 %, with the bulk of the
  benchmarks in the 10–40 % range (Figure 13).
"""

from __future__ import annotations

from repro.workloads.benchmark import (
    BenchmarkSpec,
    MemoryBehavior,
    Suite,
    WorkloadClass,
)

__all__ = [
    "ALL_BENCHMARKS",
    "TRAINING_BENCHMARKS",
    "TEST_ONLY_BENCHMARKS",
    "benchmark_by_name",
    "benchmarks_by_suite",
    "equivalent_benchmarks",
]


def _spec(name, suite, wclass, behavior, m, b, min_fp, cpu, rate, group=None,
          startup=1.0):
    return BenchmarkSpec(
        name=name,
        suite=suite,
        workload_class=wclass,
        memory_behavior=behavior,
        memory_m=m,
        memory_b=b,
        min_footprint_gb=min_fp,
        cpu_load=cpu,
        rate_gb_per_min=rate,
        startup_min=startup,
        equivalent_group=group,
    )


_HB = Suite.HIBENCH
_BDB = Suite.BIGDATABENCH
_SP = Suite.SPARK_PERF
_SB = Suite.SPARK_BENCH

_EXP = MemoryBehavior.EXPONENTIAL
_LOG = MemoryBehavior.NAPIERIAN_LOG
_POW = MemoryBehavior.POWER_LAW

_SHUFFLE = WorkloadClass.SHUFFLE
_TEXT = WorkloadClass.TEXT
_SQL = WorkloadClass.SQL
_GRAPH = WorkloadClass.GRAPH
_ML = WorkloadClass.ML_ITERATIVE
_LA = WorkloadClass.LINEAR_ALGEBRA


#: The 16 HiBench + BigDataBench programs used to train the memory
#: functions and the expert selector (paper Section 3.3 and Figure 17).
TRAINING_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    # --- HiBench ------------------------------------------------------
    _spec("HB.Sort", _HB, _SHUFFLE, _EXP, 5.768, 4.479, 0.45, 0.18, 5.0, "sort"),
    _spec("HB.TeraSort", _HB, _SHUFFLE, _EXP, 6.4, 2.9, 0.5, 0.27, 4.2, "terasort"),
    _spec("HB.WordCount", _HB, _TEXT, _EXP, 4.1, 3.6, 0.4, 0.22, 5.5, "wordcount"),
    _spec("HB.Scan", _HB, _SQL, _EXP, 3.2, 5.1, 0.35, 0.08, 6.0, "scan"),
    _spec("HB.Aggregation", _HB, _SQL, _EXP, 4.8, 3.1, 0.4, 0.34, 4.5, "aggregation"),
    _spec("HB.Join", _HB, _SQL, _EXP, 5.3, 2.4, 0.45, 0.28, 3.8, "join"),
    _spec("HB.PageRank", _HB, _GRAPH, _LOG, 16.333, 1.79, 1.2, 0.30, 2.2, "pagerank"),
    _spec("HB.Kmeans", _HB, _ML, _POW, 0.62, 0.86, 0.4, 0.36, 2.6, "kmeans"),
    _spec("HB.Bayes", _HB, _ML, _POW, 0.56, 0.83, 0.4, 0.26, 2.9, "bayes"),
    # --- BigDataBench --------------------------------------------------
    _spec("BDB.Sort", _BDB, _SHUFFLE, _LOG, 14.6, 2.4, 1.1, 0.20, 4.6, "sort"),
    _spec("BDB.WordCount", _BDB, _TEXT, _EXP, 3.7, 4.2, 0.35, 0.24, 5.2, "wordcount"),
    _spec("BDB.Grep", _BDB, _TEXT, _EXP, 2.9, 4.8, 0.3, 0.12, 6.4, "grep"),
    _spec("BDB.PageRank", _BDB, _GRAPH, _LOG, 17.4, 2.0, 1.3, 0.32, 2.0, "pagerank"),
    _spec("BDB.Kmeans", _BDB, _ML, _POW, 0.58, 0.87, 0.4, 0.38, 2.4, "kmeans"),
    _spec("BDB.Con.Com", _BDB, _GRAPH, _LOG, 15.2, 1.9, 1.2, 0.24, 2.3, "concom"),
    _spec("BDB.NaiveBayes", _BDB, _ML, _POW, 0.52, 0.82, 0.4, 0.22, 3.1, "bayes"),
)


#: Benchmarks from Spark-Perf and Spark-Bench, used only for evaluation
#: (the paper never trains on them — Section 3.3).
TEST_ONLY_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    # --- Spark-Perf ----------------------------------------------------
    _spec("SP.Kmeans", _SP, _ML, _POW, 0.60, 0.85, 0.4, 0.40, 2.5, "kmeans"),
    _spec("SP.NaiveBayes", _SP, _ML, _POW, 0.54, 0.81, 0.4, 0.24, 3.0, "bayes"),
    _spec("SP.glm-classification", _SP, _ML, _POW, 0.55, 0.82, 0.4, 0.35, 2.8),
    _spec("SP.glm-regression", _SP, _ML, _POW, 0.52, 0.84, 0.4, 0.33, 2.7),
    _spec("SP.Pca", _SP, _LA, _POW, 0.72, 0.78, 0.4, 0.42, 2.2, "pca"),
    _spec("SP.DecisionTree", _SP, _ML, _POW, 0.48, 0.8, 0.4, 0.30, 3.2),
    _spec("SP.Gmm", _SP, _ML, _POW, 0.66, 0.88, 0.4, 0.45, 2.1),
    _spec("SP.Spearman", _SP, _LA, _POW, 0.66, 0.76, 0.4, 0.26, 3.4),
    _spec("SP.Pearson", _SP, _LA, _POW, 0.6, 0.74, 0.4, 0.22, 3.6),
    _spec("SP.Chi-sq", _SP, _LA, _POW, 0.5, 0.72, 0.4, 0.18, 3.9),
    _spec("SP.Sum.Statis", _SP, _LA, _POW, 0.42, 0.7, 0.4, 0.13, 4.4),
    _spec("SP.CoreRDD", _SP, _SHUFFLE, _EXP, 4.4, 3.3, 0.4, 0.15, 5.3),
    _spec("SP.B.MatrixMult", _SP, _LA, _POW, 0.85, 0.88, 0.4, 0.52, 1.8),
    _spec("SP.ALS", _SP, _LA, _POW, 0.7, 0.81, 0.4, 0.40, 2.3),
    _spec("SP.LDA", _SP, _ML, _POW, 0.68, 0.84, 0.4, 0.38, 2.2),
    _spec("SP.Word2Vec", _SP, _ML, _POW, 0.57, 0.83, 0.4, 0.34, 2.6),
    _spec("SP.FPGrowth", _SP, _ML, _POW, 0.59, 0.85, 0.4, 0.29, 2.5),
    _spec("SP.LabelPropagation", _SP, _GRAPH, _LOG, 15.8, 1.85, 1.2, 0.27, 2.2),
    # --- Spark-Bench ---------------------------------------------------
    _spec("SB.Hive", _SB, _SQL, _EXP, 5.1, 2.7, 0.5, 0.20, 4.0, "scan"),
    _spec("SB.RDDRelation", _SB, _SQL, _EXP, 4.6, 2.9, 0.45, 0.17, 4.3),
    _spec("SB.MatrixFact", _SB, _LA, _POW, 0.78, 0.85, 0.4, 0.48, 2.0),
    _spec("SB.SVD++", _SB, _LA, _POW, 0.82, 0.86, 0.4, 0.46, 1.9),
    _spec("SB.LogRegre", _SB, _ML, _POW, 0.5, 0.83, 0.4, 0.32, 2.9),
    _spec("SB.TeraSort", _SB, _SHUFFLE, _EXP, 6.1, 3.0, 0.5, 0.24, 4.1, "terasort"),
    _spec("SB.SVM", _SB, _ML, _POW, 0.53, 0.8, 0.4, 0.31, 2.8),
    _spec("SB.TriangleCount", _SB, _GRAPH, _LOG, 16.0, 1.9, 1.2, 0.28, 2.1),
    _spec("SB.ShortestPaths", _SB, _GRAPH, _LOG, 15.4, 1.8, 1.2, 0.25, 2.3),
    _spec("SB.PCA", _SB, _LA, _POW, 0.69, 0.77, 0.4, 0.41, 2.2, "pca"),
)


#: Every benchmark used in the evaluation (44 applications, four suites).
ALL_BENCHMARKS: tuple[BenchmarkSpec, ...] = TRAINING_BENCHMARKS + TEST_ONLY_BENCHMARKS

_BY_NAME = {spec.name: spec for spec in ALL_BENCHMARKS}


def benchmark_by_name(name: str) -> BenchmarkSpec:
    """Look up a benchmark specification by its qualified name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown benchmark: {name!r}") from None


def benchmarks_by_suite(suite: Suite) -> list[BenchmarkSpec]:
    """All benchmarks belonging to the given suite."""
    return [spec for spec in ALL_BENCHMARKS if spec.suite is suite]


def equivalent_benchmarks(spec: BenchmarkSpec) -> list[BenchmarkSpec]:
    """Benchmarks implementing the same algorithm in another suite.

    The paper's leave-one-out protocol excludes these from the training set
    when evaluating ``spec`` (Section 5.2: when testing Sort from HiBench,
    Sort from BigDataBench is excluded as well).
    """
    if spec.equivalent_group is None:
        return []
    return [
        other
        for other in ALL_BENCHMARKS
        if other.name != spec.name and other.equivalent_group == spec.equivalent_group
    ]
