"""Task-mix scenarios (paper Tables 3 and 4).

The paper evaluates ten runtime scenarios, L1–L10, each scheduling a batch
of 2–30 randomly selected applications; for every scenario ~100 different
application mixes are tried and every benchmark appears in each scenario
(Section 5.2).  Table 4 additionally fixes one concrete 30-application mix
used for the utilisation study of Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.inputs import INPUT_SIZE_GB, InputSize, sample_input_size
from repro.workloads.suites import ALL_BENCHMARKS, benchmark_by_name

__all__ = [
    "Job",
    "SCENARIOS",
    "TABLE4_MIX",
    "scenario_app_count",
    "make_random_mix",
    "make_scenario_mixes",
    "make_table4_jobs",
]


@dataclass(frozen=True)
class Job:
    """One application submission: a benchmark plus a concrete input size.

    ``submit_time_min`` is the simulated minute at which the job enters the
    scheduling queue.  The paper's Table-3 scenarios are closed batches
    (everything arrives at t=0, the default); open-arrival scenarios assign
    later submission times through an arrival process
    (:mod:`repro.workloads.arrivals`).
    """

    benchmark: str
    input_gb: float
    order: int = 0
    submit_time_min: float = 0.0

    def __post_init__(self) -> None:
        if self.input_gb <= 0:
            raise ValueError("input_gb must be positive")
        if self.submit_time_min < 0:
            raise ValueError("submit_time_min cannot be negative")
        # Validate the benchmark name eagerly so a typo fails at mix
        # construction rather than deep inside the simulator.
        benchmark_by_name(self.benchmark)


#: Table 3 — number of applications in each runtime scenario.
SCENARIOS: dict[str, int] = {
    "L1": 2,
    "L2": 6,
    "L3": 7,
    "L4": 9,
    "L5": 11,
    "L6": 13,
    "L7": 19,
    "L8": 23,
    "L9": 26,
    "L10": 30,
}


def scenario_app_count(label: str) -> int:
    """Number of applications in scenario ``label`` (Table 3)."""
    try:
        return SCENARIOS[label]
    except KeyError:
        raise KeyError(f"unknown scenario label: {label!r}") from None


#: Table 4 — the fixed 30-application mix of the L10 utilisation study.
#: Entries are ``(benchmark, named input size)`` in submission order.
TABLE4_MIX: tuple[tuple[str, InputSize], ...] = (
    ("BDB.WordCount", InputSize.MEDIUM),
    ("SP.Kmeans", InputSize.LARGE),
    ("SP.glm-classification", InputSize.LARGE),
    ("SP.glm-regression", InputSize.LARGE),
    ("SP.Pca", InputSize.MEDIUM),
    ("SB.SVD++", InputSize.LARGE),
    ("HB.Scan", InputSize.MEDIUM),
    ("HB.TeraSort", InputSize.LARGE),
    ("SB.Hive", InputSize.LARGE),
    ("SP.NaiveBayes", InputSize.LARGE),
    ("BDB.PageRank", InputSize.LARGE),
    ("HB.PageRank", InputSize.MEDIUM),
    ("SP.DecisionTree", InputSize.MEDIUM),
    ("SP.Spearman", InputSize.LARGE),
    ("SB.MatrixFact", InputSize.LARGE),
    ("BDB.Grep", InputSize.LARGE),
    ("SB.LogRegre", InputSize.LARGE),
    ("BDB.NaiveBayes", InputSize.MEDIUM),
    ("BDB.Kmeans", InputSize.MEDIUM),
    ("HB.Sort", InputSize.LARGE),
    ("SP.CoreRDD", InputSize.SMALL),
    ("SP.Gmm", InputSize.LARGE),
    ("HB.Join", InputSize.LARGE),
    ("SP.Sum.Statis", InputSize.MEDIUM),
    ("SP.B.MatrixMult", InputSize.LARGE),
    ("BDB.Sort", InputSize.MEDIUM),
    ("SB.RDDRelation", InputSize.LARGE),
    ("SP.Pearson", InputSize.LARGE),
    ("SP.Chi-sq", InputSize.MEDIUM),
    ("HB.Kmeans", InputSize.LARGE),
)


def make_table4_jobs() -> list[Job]:
    """The Table 4 mix as concrete :class:`Job` objects in submission order."""
    return [
        Job(benchmark=name, input_gb=INPUT_SIZE_GB[size], order=i)
        for i, (name, size) in enumerate(TABLE4_MIX)
    ]


def make_random_mix(n_apps: int, rng: np.random.Generator,
                    input_jitter: float = 0.25) -> list[Job]:
    """Draw a random application mix of ``n_apps`` jobs.

    Benchmarks are sampled without replacement first (so small mixes are
    diverse) and with replacement once every benchmark has been used, which
    mirrors the paper's requirement that all benchmarks appear across a
    scenario's mixes.
    """
    if n_apps < 1:
        raise ValueError("n_apps must be at least 1")
    names = [spec.name for spec in ALL_BENCHMARKS]
    chosen: list[str] = []
    pool = list(names)
    while len(chosen) < n_apps:
        if not pool:
            pool = list(names)
        index = int(rng.integers(0, len(pool)))
        chosen.append(pool.pop(index))
    jobs = []
    for order, name in enumerate(chosen):
        _, input_gb = sample_input_size(rng, jitter=input_jitter)
        jobs.append(Job(benchmark=name, input_gb=input_gb, order=order))
    return jobs


def make_scenario_mixes(label: str, n_mixes: int = 5, seed: int = 0,
                        rng: np.random.Generator | None = None) -> list[list[Job]]:
    """Generate ``n_mixes`` random mixes for scenario ``label``.

    The paper uses ~100 mixes per scenario; the default here is smaller so
    the full experiment grid stays tractable on a laptop, and callers can
    raise ``n_mixes`` for higher-fidelity runs.

    Passing ``rng`` draws from an existing generator instead of seeding a
    fresh one, so callers (the scenario subsystem, the CLI ``--seed`` path)
    can thread one seeded generator through every random choice of a run.
    """
    if n_mixes < 1:
        raise ValueError("n_mixes must be at least 1")
    n_apps = scenario_app_count(label)
    if rng is None:
        rng = np.random.default_rng(seed)
    return [make_random_mix(n_apps, rng) for _ in range(n_mixes)]
