"""Server-utilisation metrics (Figure 7): streaming-first, post-hoc legacy.

The engines publish one :class:`~repro.cluster.events.ClusterSample` per
node state change on the simulator's event bus; everything in this module
consumes that stream:

* :class:`StreamingUtilization` (re-exported from
  :mod:`repro.cluster.resource_monitor`) keeps O(nodes) running means —
  headline utilisation without any trace.
* :class:`StreamingUtilizationHeatmap` builds the Figure 7 nodes × time
  heat map with **bounded memory**: it bins samples on the fly and, when
  the run outgrows its capacity, merges adjacent bins (doubling the bin
  width), so memory stays O(nodes × bins) regardless of simulation
  length.

The post-hoc helper :func:`downsample_trace` still operates on fully
recorded traces; the deprecated trace-matrix builder it used to feed has
been retired now that the streaming heat map covers its one consumer.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import EventKind
from repro.cluster.resource_monitor import StreamingUtilization

__all__ = [
    "downsample_trace",
    "StreamingUtilization",
    "StreamingUtilizationHeatmap",
]


def downsample_trace(trace, n_bins: int) -> np.ndarray:
    """Average a per-step utilisation trace into ``n_bins`` equal time bins."""
    if n_bins < 1:
        raise ValueError("n_bins must be at least 1")
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        return np.zeros(n_bins)
    chunks = np.array_split(trace, n_bins)
    return np.array([chunk.mean() if chunk.size else 0.0 for chunk in chunks])


class StreamingUtilizationHeatmap:
    """Figure 7 heat map accumulated from the sample stream, O(1) per step.

    Samples land in uniform time bins of the current width; when a run
    outgrows ``2 × n_bins`` bins, adjacent bins are merged pairwise and
    the width doubles, so the structure never holds more than
    ``2 × n_bins`` (sum, count) pairs per node — bounded memory for any
    simulation length, unlike the post-hoc trace matrix.

    Parameters
    ----------
    n_bins:
        Number of time bins in the rendered heat map.
    initial_bin_min:
        Starting bin width in minutes (defaults to one; it doubles as
        needed, so only the resolution floor matters).
    """

    def __init__(self, n_bins: int = 48, initial_bin_min: float = 1.0) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be at least 1")
        if initial_bin_min <= 0:
            raise ValueError("initial_bin_min must be positive")
        self.n_bins = n_bins
        self._capacity = 2 * n_bins
        self._width = float(initial_bin_min)
        self._sums: dict[int, np.ndarray] = {}
        self._counts: dict[int, np.ndarray] = {}
        self._max_bin = -1

    def attach(self, bus) -> "StreamingUtilizationHeatmap":
        """Subscribe to the :class:`ClusterSample` events on a bus."""
        bus.subscribe(self._on_sample, kinds=(EventKind.CLUSTER_SAMPLE,))
        return self

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def _on_sample(self, event) -> None:
        times = np.asarray(event.times, dtype=float)
        if times.size == 0:
            return
        while float(times[-1]) // self._width >= self._capacity:
            self._merge()
        indices = (times // self._width).astype(int)
        # Times are ascending, so the occupied bins and their sample
        # counts come out of one np.unique pass; per node only those few
        # bins are touched (a fixed-step event touches exactly one).
        touched, touched_counts = np.unique(indices, return_counts=True)
        self._max_bin = max(self._max_bin, int(indices[-1]))
        for node_id, _, _, utilization in event.samples:
            sums = self._sums.get(node_id)
            if sums is None:
                sums = np.zeros(self._capacity)
                self._sums[node_id] = sums
                self._counts[node_id] = np.zeros(self._capacity, dtype=int)
            sums[touched] += touched_counts * utilization
            self._counts[node_id][touched] += touched_counts

    def _merge(self) -> None:
        """Merge adjacent bins pairwise; the bin width doubles."""
        for node_id in self._sums:
            sums = self._sums[node_id]
            counts = self._counts[node_id]
            merged_sums = np.zeros(self._capacity)
            merged_counts = np.zeros(self._capacity, dtype=int)
            half = self._capacity // 2
            merged_sums[:half] = sums[0::2] + sums[1::2]
            merged_counts[:half] = counts[0::2] + counts[1::2]
            self._sums[node_id] = merged_sums
            self._counts[node_id] = merged_counts
        self._width *= 2.0
        self._max_bin = self._max_bin // 2

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """The accumulated heat map as ``(bin_times_min, matrix)``.

        ``matrix[i, j]`` is the mean utilisation (%) of the ``i``-th node
        (node-id order) in the ``j``-th of ``n_bins`` equal groups of
        *sampled* bins; ``bin_times_min[j]`` is the group's time centre.
        Bins no sample ever landed in (possible when the simulation step
        is coarser than the current bin width) are skipped when grouping,
        so the rendered map never shows spurious idle columns between
        samples.
        """
        if not self._sums or self._max_bin < 0:
            return np.zeros(self.n_bins), np.zeros((0, self.n_bins))
        node_ids = sorted(self._sums)
        total_counts = np.zeros(self._capacity, dtype=int)
        for node_id in node_ids:
            total_counts += self._counts[node_id]
        sampled = np.nonzero(total_counts)[0]
        if sampled.size == 0:
            return np.zeros(self.n_bins), np.zeros((len(node_ids), self.n_bins))
        groups = np.array_split(sampled, self.n_bins)
        matrix = np.zeros((len(node_ids), self.n_bins))
        bin_times = np.zeros(self.n_bins)
        for j, group in enumerate(groups):
            if group.size == 0:
                continue
            bin_times[j] = 0.5 * (group[0] + group[-1] + 1) * self._width
            for i, node_id in enumerate(node_ids):
                count = self._counts[node_id][group].sum()
                if count:
                    matrix[i, j] = self._sums[node_id][group].sum() / count
        return bin_times, matrix
