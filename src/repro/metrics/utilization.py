"""Server-utilisation post-processing (Figure 7).

The simulator records one CPU-utilisation sample per node per time step.
Figure 7 renders this as a nodes × time heat map; these helpers downsample
the raw traces into a fixed number of time bins so the heat map (and the
benchmark harness that prints it) stays a manageable size regardless of
simulation length.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simulator import SimulationResult

__all__ = ["downsample_trace", "utilization_matrix"]


def downsample_trace(trace, n_bins: int) -> np.ndarray:
    """Average a per-step utilisation trace into ``n_bins`` equal time bins."""
    if n_bins < 1:
        raise ValueError("n_bins must be at least 1")
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        return np.zeros(n_bins)
    chunks = np.array_split(trace, n_bins)
    return np.array([chunk.mean() if chunk.size else 0.0 for chunk in chunks])


def utilization_matrix(result: SimulationResult,
                       n_bins: int = 48) -> tuple[np.ndarray, np.ndarray]:
    """Build the Figure 7 heat-map data from a simulation result.

    Returns
    -------
    (bin_times_min, matrix):
        ``bin_times_min`` is the representative time of each bin;
        ``matrix[node, bin]`` is the average CPU utilisation (%) of that
        node during that bin.
    """
    if not result.utilization_trace:
        raise ValueError("the simulation did not record utilisation traces")
    node_ids = sorted(result.utilization_trace)
    matrix = np.vstack([
        downsample_trace(result.utilization_trace[node_id], n_bins)
        for node_id in node_ids
    ])
    times = np.asarray(result.utilization_times, dtype=float)
    if times.size:
        bin_times = np.array([chunk.mean() if chunk.size else 0.0
                              for chunk in np.array_split(times, n_bins)])
    else:
        bin_times = np.zeros(n_bins)
    return bin_times, matrix
