"""Evaluation metrics (Section 5.3).

The paper quantifies multi-programmed performance with two standard
metrics from Eyerman and Eeckhout:

* **System throughput (STP)** — higher is better — the aggregated progress
  of all jobs under co-location relative to isolated execution (Eq. 1);
* **Average normalized turnaround time (ANTT)** — lower is better — the
  average user-perceived slowdown relative to isolated execution (Eq. 2).

Results are normalised against the baseline that runs applications one by
one with exclusive memory use; the paper reports normalized STP and the
percentage *reduction* in ANTT.  Additional helpers compute the server
utilisation heat-map data of Figure 7 and the co-location slowdown
distributions of Figures 14 and 15.
"""

from repro.metrics.throughput import (
    ScheduleEvaluation,
    StreamingScheduleMetrics,
    antt,
    antt_reduction_percent,
    baseline_turnarounds_min,
    evaluate_schedule,
    isolated_reference_min,
    system_throughput,
)
from repro.metrics.utilization import (
    StreamingUtilization,
    StreamingUtilizationHeatmap,
    downsample_trace,
)
from repro.metrics.slowdown import parsec_colocation_slowdown_percent, slowdown_percent

__all__ = [
    "ScheduleEvaluation",
    "StreamingScheduleMetrics",
    "antt",
    "antt_reduction_percent",
    "baseline_turnarounds_min",
    "evaluate_schedule",
    "isolated_reference_min",
    "system_throughput",
    "StreamingUtilization",
    "StreamingUtilizationHeatmap",
    "downsample_trace",
    "slowdown_percent",
    "parsec_colocation_slowdown_percent",
]
