"""Co-location slowdown helpers (Figures 14 and 15).

Figure 14 measures how much a target Spark benchmark slows down when the
scheme co-locates another Spark application on the same host; that
experiment is driven end to end through the simulator (see
``repro.experiments.fig14_interference``) and only needs the plain
percentage-slowdown helper from here.

Figure 15 co-locates computation-intensive PARSEC applications with Spark
tasks.  PARSEC programs are not Spark applications, so their interference
is modelled analytically from the same ingredients the simulator uses: the
scheme's CPU admission rule keeps the aggregate load at or below 100 %, so
the residual slowdown comes from memory-bandwidth and last-level-cache
pressure, weighted by how cache sensitive the PARSEC program is.
"""

from __future__ import annotations

from repro.cluster.simulator import InterferenceModel
from repro.workloads.benchmark import BenchmarkSpec, MemoryBehavior
from repro.workloads.parsec import ParsecSpec

__all__ = ["slowdown_percent", "spark_bandwidth_pressure",
           "parsec_colocation_slowdown_percent"]


def slowdown_percent(isolated_min: float, colocated_min: float) -> float:
    """Percentage slowdown of a co-located run relative to isolation."""
    if isolated_min <= 0:
        raise ValueError("isolated_min must be positive")
    return float(100.0 * (colocated_min - isolated_min) / isolated_min)


#: Relative memory-bandwidth pressure exerted by a Spark executor, by
#: memory-function family: streaming (exponential) and graph (logarithmic)
#: applications move far more data per unit time than the compute-bound
#: power-law applications.
_FAMILY_BANDWIDTH_PRESSURE: dict[MemoryBehavior, float] = {
    MemoryBehavior.EXPONENTIAL: 0.30,
    MemoryBehavior.NAPIERIAN_LOG: 0.35,
    MemoryBehavior.POWER_LAW: 0.18,
}


def spark_bandwidth_pressure(spec: BenchmarkSpec) -> float:
    """Memory-bandwidth pressure (0..1) of one co-running Spark executor."""
    base = _FAMILY_BANDWIDTH_PRESSURE[spec.memory_behavior]
    # CPU-hungrier Spark tasks issue memory traffic at a higher rate.
    return base * (0.6 + spec.cpu_load)


def parsec_colocation_slowdown_percent(
    parsec: ParsecSpec,
    spark: BenchmarkSpec,
    interference: InterferenceModel | None = None,
) -> float:
    """Predicted slowdown of a PARSEC benchmark co-located with a Spark task.

    The co-location scheme admits the Spark executor only while the
    aggregate CPU stays within the node, so the CPU term only captures the
    residual SMT/scheduling contention of the admitted share; the dominant
    term is cache/bandwidth interference scaled by the PARSEC program's
    sensitivity.
    """
    interference = interference or InterferenceModel()
    admitted_spark_cpu = min(spark.cpu_load, max(1.0 - parsec.cpu_load, 0.0))
    overflow = max(parsec.cpu_load + spark.cpu_load - 1.0, 0.0)
    # Residual contention from sharing hardware threads with the admitted
    # executor plus any monitoring-lag overflow.
    cpu_term = 0.06 * admitted_spark_cpu + 0.5 * overflow * spark.cpu_load
    bandwidth_term = parsec.memory_sensitivity * spark_bandwidth_pressure(spark)
    bandwidth_term *= (1.0 - interference.bandwidth_factor(2)) / 0.035
    slowdown = (cpu_term + bandwidth_term) * 100.0
    return float(max(slowdown, 0.0))
