"""System throughput and turnaround-time metrics (Eqs. 1 and 2).

The isolated reference time ``C_is`` of an application is its execution
time when it exclusively uses the nodes Spark's dynamic allocation grants
it; the co-located time ``C_cl`` is its turnaround under the evaluated
schedule (all jobs are submitted together, so queueing time counts against
the scheme, exactly as user-perceived delay does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.events import EventKind
from repro.cluster.simulator import SimulationResult
from repro.spark.driver import DynamicAllocationPolicy
from repro.workloads.mixes import Job
from repro.workloads.suites import benchmark_by_name

__all__ = [
    "isolated_reference_min",
    "baseline_turnarounds_min",
    "instance_names",
    "matched_apps",
    "system_throughput",
    "antt",
    "antt_reduction_percent",
    "ScheduleEvaluation",
    "evaluate_schedule",
    "StreamingScheduleMetrics",
]


def isolated_reference_min(job: Job,
                           policy: DynamicAllocationPolicy | None = None) -> float:
    """Isolated execution time ``C_is`` of one job (Eq. 1 denominator).

    The job runs alone, with one executor on each of the nodes Spark's
    dynamic allocation grants it and every executor using the node's full
    memory, so there is no contention of any kind.
    """
    policy = policy or DynamicAllocationPolicy()
    spec = benchmark_by_name(job.benchmark)
    executors = policy.desired_executors(job.input_gb)
    return spec.isolated_runtime_min(job.input_gb, n_executors=executors)


def baseline_turnarounds_min(jobs: list[Job],
                             policy: DynamicAllocationPolicy | None = None) -> list[float]:
    """Turnaround times under the one-by-one isolated baseline.

    Jobs are executed in submission order, each waiting for every earlier
    job to finish, so the turnaround of job *i* is the sum of the isolated
    execution times of jobs 0..i.
    """
    if not jobs:
        raise ValueError("baseline turnaround needs at least one job")
    turnarounds = []
    elapsed = 0.0
    for job in jobs:
        elapsed += isolated_reference_min(job, policy)
        turnarounds.append(elapsed)
    return turnarounds


def instance_names(jobs: list[Job]) -> list[str]:
    """Application instance names of a mix, in submission order.

    Mirrors the simulator's incremental naming
    (``ClusterSimulator._submit_job``): a benchmark's second occurrence
    in a mix is ``"<benchmark>#1"``, and so on.  Submission order is the
    mix order (the simulator's arrival sort is stable), so the upfront
    and incremental spellings always agree.
    """
    counts: dict[str, int] = {}
    names = []
    for job in jobs:
        occurrence = counts.get(job.benchmark, 0)
        counts[job.benchmark] = occurrence + 1
        names.append(f"{job.benchmark}#{occurrence}" if occurrence
                     else job.benchmark)
    return names


def matched_apps(result: SimulationResult, jobs: list[Job],
                 policy: DynamicAllocationPolicy | None = None):
    """Pair each job with its application and isolated reference time.

    Returns ``(job, app, reference_min)`` triples in submission order,
    resolving the simulator's instance-naming convention via
    :func:`instance_names`.
    """
    return [(job, result.apps[name], isolated_reference_min(job, policy))
            for job, name in zip(jobs, instance_names(jobs))]


def system_throughput(result: SimulationResult, jobs: list[Job],
                      policy: DynamicAllocationPolicy | None = None) -> float:
    """STP of a schedule (Eq. 1): sum over jobs of ``C_is / C_cl``.

    ``C_cl`` is the job's completion time under the evaluated scheme,
    measured from batch submission (all jobs are submitted together), so a
    scheme only scores highly when it genuinely makes concurrent progress
    on many jobs.  The one-by-one isolated baseline therefore lands close
    to 1, and the values reported for the co-location schemes are directly
    the "normalized STP" of the paper's Figure 6a.
    """
    triples = matched_apps(result, jobs, policy)
    return float(sum(reference / app.turnaround_min()
                     for _, app, reference in triples))


def antt(result: SimulationResult, jobs: list[Job],
         policy: DynamicAllocationPolicy | None = None) -> float:
    """ANTT of a schedule (Eq. 2): mean over jobs of ``C_cl / C_is``.

    ANTT quantifies the user-perceived delay between a task being created
    and its completion (Section 5.3), so ``C_cl`` here is the turnaround
    time — queueing and profiling included.
    """
    triples = matched_apps(result, jobs, policy)
    return float(np.mean([app.turnaround_min() / reference
                          for _, app, reference in triples]))


def baseline_antt(jobs: list[Job],
                  policy: DynamicAllocationPolicy | None = None) -> float:
    """ANTT of the one-by-one isolated baseline."""
    turnarounds = baseline_turnarounds_min(jobs, policy)
    references = [isolated_reference_min(job, policy) for job in jobs]
    return float(np.mean([t / r for t, r in zip(turnarounds, references)]))


def antt_reduction_percent(result: SimulationResult, jobs: list[Job],
                           policy: DynamicAllocationPolicy | None = None) -> float:
    """Percentage ANTT reduction over the isolated baseline (Figure 6b)."""
    scheme = antt(result, jobs, policy)
    baseline = baseline_antt(jobs, policy)
    return float(100.0 * (baseline - scheme) / baseline)


@dataclass(frozen=True)
class ScheduleEvaluation:
    """STP, ANTT and derived quantities for one simulated schedule."""

    stp: float
    antt: float
    antt_reduction_percent: float
    makespan_min: float
    mean_utilization_percent: float
    all_finished: bool


def evaluate_schedule(result: SimulationResult, jobs: list[Job],
                      policy: DynamicAllocationPolicy | None = None) -> ScheduleEvaluation:
    """Compute every headline metric for one simulated schedule."""
    return ScheduleEvaluation(
        stp=system_throughput(result, jobs, policy),
        antt=antt(result, jobs, policy),
        antt_reduction_percent=antt_reduction_percent(result, jobs, policy),
        makespan_min=result.makespan_min,
        mean_utilization_percent=result.mean_node_utilization(),
        all_finished=result.all_finished(),
    )


class StreamingScheduleMetrics:
    """Streaming STP/ANTT: an event-bus subscriber instead of a post-hoc pass.

    Attach it to a simulator's bus *before* the run; it consumes the
    ``APP_FINISHED`` events both engines publish and keeps one finish
    time per job — O(jobs) state, no result traversal.  The final
    reductions run in submission order over exactly the same floats as
    the post-hoc helpers above, so :meth:`evaluate` is bit-for-bit
    identical to :func:`evaluate_schedule` on the same run.

    Parameters
    ----------
    jobs:
        The submitted mix, in submission order (fixes the per-job
        isolated references and the instance-name mapping up front).
    policy:
        Allocation policy of the isolated reference; this is the
        *nominal* platform yardstick, deliberately untouched by dynamic
        cluster events mid-run.
    """

    def __init__(self, jobs: list[Job],
                 policy: DynamicAllocationPolicy | None = None) -> None:
        if not jobs:
            raise ValueError("streaming metrics need at least one job")
        self._jobs = list(jobs)
        self._policy = policy
        self._names = instance_names(self._jobs)
        self._references = [isolated_reference_min(job, policy)
                            for job in self._jobs]
        self._finish: dict[str, float] = {}

    def attach(self, bus) -> "StreamingScheduleMetrics":
        """Subscribe to the ``APP_FINISHED`` events on a bus."""
        bus.subscribe(self._on_finish, kinds=(EventKind.APP_FINISHED,))
        return self

    def per_job_references(self) -> tuple[tuple[str, float, float], ...]:
        """``(instance name, submit time, isolated reference)`` per job.

        In submission order — the fixed per-job yardsticks this tracker
        was built with, shared with consumers (e.g. the scheduling
        environment's reward stream) so they are computed exactly once.
        """
        return tuple(
            (name, job.submit_time_min, reference)
            for name, job, reference in zip(self._names, self._jobs,
                                            self._references)
        )

    def _on_finish(self, event) -> None:
        self._finish[event.app] = event.time

    # ------------------------------------------------------------------
    # Reductions (submission order, matching the post-hoc helpers)
    # ------------------------------------------------------------------
    @property
    def finished_count(self) -> int:
        """Number of jobs whose finish event has streamed past."""
        return len(self._finish)

    def _turnarounds(self) -> list[float]:
        missing = [name for name in self._names if name not in self._finish]
        if missing:
            raise RuntimeError(f"jobs not finished (or bus not attached "
                               f"before the run): {missing}")
        return [self._finish[name] - job.submit_time_min
                for name, job in zip(self._names, self._jobs)]

    def stp(self) -> float:
        """System throughput (Eq. 1) from the streamed finish times."""
        return float(sum(reference / turnaround
                         for reference, turnaround
                         in zip(self._references, self._turnarounds())))

    def antt(self) -> float:
        """ANTT (Eq. 2) from the streamed finish times."""
        return float(np.mean([turnaround / reference
                              for reference, turnaround
                              in zip(self._references, self._turnarounds())]))

    def antt_reduction_percent(self) -> float:
        """Percentage ANTT reduction over the isolated baseline."""
        baseline = baseline_antt(self._jobs, self._policy)
        return float(100.0 * (baseline - self.antt()) / baseline)

    def evaluate(self, result: SimulationResult) -> ScheduleEvaluation:
        """The full headline evaluation for a completed run."""
        return ScheduleEvaluation(
            stp=self.stp(),
            antt=self.antt(),
            antt_reduction_percent=self.antt_reduction_percent(),
            makespan_min=result.makespan_min,
            mean_utilization_percent=result.mean_node_utilization(),
            all_finished=result.all_finished(),
        )
